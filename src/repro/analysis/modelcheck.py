"""Small-scope exhaustive schedule exploration for migration protocols.

Plan migration is a concurrent protocol: source deliveries, the migration
trigger and the strategy's phase transitions (GenMig's arm/complete,
Parallel Track's completion scan) interleave, and the paper's correctness
claims (Theorem 1, the Figure 2 counter-example) quantify over *every*
interleaving.  Ordinary tests drive one schedule; this module drives the
real executor through **all** of them for a bounded scenario and checks
each schedule's output against the relational oracle of Definition 1 —
turning the paper's claims into exhaustively checked properties:

* every finite schedule is a sequence of *choices*: which enabled event
  fires next (one source's next element, or the migration trigger), and —
  through :attr:`~repro.core.strategy.MigrationStrategy.transition_gate` —
  whether an enabled phase transition fires at this tick or defers;
* the explorer enumerates schedules depth-first with prefix replay
  (classic stateless model checking): the first run takes default
  choices, records every choice point, and pushes each untaken
  alternative as a prefix to replay later;
* state pruning à la DPOR cuts commuting interleavings: after each free
  (non-replayed) choice the executor's
  :meth:`~repro.engine.executor.QueryExecutor.fingerprint` — operator
  state, watermarks, strategy phase state — plus the output-so-far and
  the remaining work form a key; a repeated key means the continuation
  is schedule-for-schedule identical to one already explored, so the
  schedule is abandoned and counted as pruned.  Pruning is disabled
  when an installed strategy is not enumerable (``phase_state() is
  None``) — soundness over speed;
* every completed schedule's output is checked snapshot-by-snapshot
  against the :class:`RelationalOracle` (``MCK001`` on divergence) and
  for snapshot-equivalence against the first clean schedule's output
  (``MCK002`` on schedule-dependent results — fragmentation may differ,
  snapshots may not).

The bundled presets (:data:`PRESETS`) cover the paper's load-bearing
scenarios: the Figure 2 Parallel Track defect (``pt-figure2``, expected
to violate), GenMig on the same plan pair (``genmig-figure2``), and the
join-reordering scenarios for PT and the reference-point optimization.
:func:`seed_bug` injects a deliberate protocol bug (an early ``T_split``)
so CI can assert the checker fails loudly.

Command line::

    python -m repro.analysis modelcheck --all
    python -m repro.analysis modelcheck --preset pt-figure2 --budget 2000
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..temporal import Multiset, StreamElement, critical_instants, snapshot
from ..temporal.time import MAX_TIME, Time
from .plan_verifier import (
    ERROR,
    FLUID,
    GENMIG,
    INFO,
    PARALLEL_TRACK,
    REFERENCE_POINT,
    WARNING,
    Diagnostic,
)

#: Default schedule budget: generous for the bundled presets (which need
#: a few hundred schedules each post-pruning) yet a hard stop for
#: accidental state-space blowups.
DEFAULT_BUDGET = 5000

_PRUNED = object()


# --------------------------------------------------------------------- #
# The relational oracle (Definition 1)
# --------------------------------------------------------------------- #


class RelationalOracle:
    """Snapshot-by-snapshot relational evaluation of a logical plan.

    Evaluates the plan's relational counterpart over the *windowed* input
    streams with the bag algebra of :class:`repro.temporal.Multiset` —
    independent of the engine under test, so a divergence implicates the
    engine (or the migration protocol), never the oracle.
    """

    def __init__(self, windowed_streams: Dict[str, Sequence[StreamElement]]) -> None:
        self._streams = windowed_streams

    def snapshot_of(self, plan: object, t: Time) -> Multiset:
        """Evaluate ``plan``'s relational counterpart at instant ``t``."""
        from ..plans.logical import (
            AggregateNode,
            DifferenceNode,
            DistinctNode,
            JoinNode,
            ProjectNode,
            SelectNode,
            Source,
            UnionNode,
        )

        if isinstance(plan, Source):
            return snapshot(self._streams[plan.name], t)
        if isinstance(plan, SelectNode):
            predicate = plan.predicate.compile(plan.child.schema)
            return self.snapshot_of(plan.child, t).select(predicate)
        if isinstance(plan, ProjectNode):
            compiled = [expr.compile(plan.child.schema) for expr, _ in plan.outputs]
            return self.snapshot_of(plan.child, t).project(
                lambda row: tuple(fn(row) for fn in compiled)
            )
        if isinstance(plan, DistinctNode):
            return self.snapshot_of(plan.child, t).distinct()
        if isinstance(plan, JoinNode):
            left = self.snapshot_of(plan.left, t)
            right = self.snapshot_of(plan.right, t)
            if plan.condition is None:
                return left.join(right, lambda a, b: True)
            predicate = plan.condition.compile(plan.schema)
            return left.join(right, lambda a, b: predicate(a + b))
        if isinstance(plan, UnionNode):
            return self.snapshot_of(plan.left, t).union(
                self.snapshot_of(plan.right, t)
            )
        if isinstance(plan, DifferenceNode):
            return self.snapshot_of(plan.left, t).difference(
                self.snapshot_of(plan.right, t)
            )
        if isinstance(plan, AggregateNode):
            return self._aggregate(plan, t)
        raise TypeError(f"no reference evaluation for {type(plan).__name__}")

    def _aggregate(self, plan: object, t: Time) -> Multiset:
        from ..operators.scalar import avg_of, count, max_of, min_of, sum_of

        child_schema = plan.child.schema
        bag = self.snapshot_of(plan.child, t)
        functions = []
        for spec in plan.aggregates:
            index = child_schema.index(spec.column) if spec.column is not None else 0
            factory = {
                "count": lambda i: count(),
                "sum": sum_of,
                "avg": avg_of,
                "min": min_of,
                "max": max_of,
            }[spec.function]
            functions.append(factory(index))
        if not plan.group_by:
            if not bag:
                return Multiset()
            rows = list(bag)
            return Multiset([tuple(fn(rows) for fn in functions)])
        indices = [child_schema.index(column) for column in plan.group_by]
        groups = bag.group_by(lambda row: tuple(row[i] for i in indices))
        result = []
        for key, members in groups.items():
            rows = list(members)
            result.append(key + tuple(fn(rows) for fn in functions))
        return Multiset(result)

    def check(
        self,
        plan: object,
        output: Sequence[StreamElement],
        instants: Iterable[Time],
    ) -> Optional[Time]:
        """First instant where ``output`` diverges from the reference."""
        for t in instants:
            if t >= MAX_TIME:
                continue
            if snapshot(output, t) != self.snapshot_of(plan, t):
                return t
        return None


# --------------------------------------------------------------------- #
# Scenarios
# --------------------------------------------------------------------- #


@dataclass
class Scenario:
    """One bounded migration scenario the explorer can exhaust.

    ``streams`` are raw ``(payload, t)`` pairs (the Section 2.2 input
    conversion applies); ``old_box``/``new_box``/``make_strategy`` are
    factories because every schedule needs fresh instances; ``plan`` is
    the logical plan both boxes implement, evaluated by the oracle;
    ``strategy`` names the verdict bucket (:data:`~repro.analysis.
    plan_verifier.STRATEGIES`) a violation demotes in
    :func:`~repro.analysis.plan_verifier.verify_migration`.
    """

    name: str
    description: str
    strategy: str
    streams: Dict[str, Sequence[tuple]]
    windows: Dict[str, Time]
    old_box: Callable[[], object]
    new_box: Callable[[], object]
    make_strategy: Callable[[], object]
    plan: object
    expect_violation: bool = False
    interval_bound: Time = 1

    def build_streams(self) -> Dict[str, List[StreamElement]]:
        """Materialise the raw elements, fresh per schedule."""
        from ..temporal import CHRONON, element

        return {
            name: [element(payload, t, t + CHRONON) for payload, t in pairs]
            for name, pairs in self.streams.items()
        }

    def windowed_streams(self) -> Dict[str, List[StreamElement]]:
        """The window-extended streams the oracle evaluates over."""
        return {
            name: [
                e.with_interval(e.interval.extend(self.windows[name]))
                for e in elements
            ]
            for name, elements in self.build_streams().items()
        }

    def run_check(
        self, budget: Optional[int] = None, metrics: Optional[object] = None
    ) -> "ModelCheckResult":
        """Explore this scenario; see :func:`check_scenario`."""
        return check_scenario(self, budget=budget, metrics=metrics)


@dataclass(frozen=True)
class ScheduleViolation:
    """One schedule on which the checked property failed."""

    code: str
    message: str
    schedule: Tuple[str, ...]
    instant: Optional[Time] = None

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "schedule": list(self.schedule),
            "instant": self.instant,
        }


@dataclass
class ModelCheckResult:
    """The outcome of exhausting (or budget-capping) one scenario."""

    scenario: str
    strategy: str
    expect_violation: bool
    explored: int = 0
    pruned: int = 0
    complete: bool = True
    violations: List[ScheduleViolation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether the scenario's expectation held.

        A defect-demonstration scenario (``expect_violation``) passes when
        at least one schedule violates; an ordinary scenario passes when
        every explored schedule is clean *and* the exploration completed
        within budget.
        """
        if self.expect_violation:
            return bool(self.violations)
        return not self.violations and self.complete

    def diagnostics(self) -> List[Diagnostic]:
        """The verdict-mergeable view of this result (MCK001/MCK002)."""
        diags: List[Diagnostic] = []
        if self.expect_violation:
            if self.violations:
                diags.append(
                    Diagnostic(
                        INFO,
                        "MCK001",
                        f"scenario {self.scenario!r}: known defect reproduced "
                        f"on {len(self.violations)} of {self.explored} "
                        "explored schedules",
                        operator=self.scenario,
                    )
                )
            else:
                diags.append(
                    Diagnostic(
                        ERROR,
                        "MCK001",
                        f"scenario {self.scenario!r}: expected a snapshot "
                        f"violation but all {self.explored} explored "
                        "schedules matched the oracle",
                        operator=self.scenario,
                    )
                )
        else:
            for violation in self.violations[:5]:
                diags.append(
                    Diagnostic(
                        ERROR,
                        violation.code,
                        f"scenario {self.scenario!r}: {violation.message} "
                        f"[schedule {' '.join(violation.schedule)}]",
                        operator=self.scenario,
                    )
                )
            if not self.violations and self.complete:
                diags.append(
                    Diagnostic(
                        INFO,
                        "MCK001",
                        f"scenario {self.scenario!r}: certified clean on "
                        f"{self.explored} exhaustively explored schedules "
                        f"({self.pruned} pruned)",
                        operator=self.scenario,
                    )
                )
        if not self.complete:
            diags.append(
                Diagnostic(
                    WARNING,
                    "MCK003",
                    f"scenario {self.scenario!r}: schedule budget exhausted "
                    f"after {self.explored} explored + {self.pruned} pruned "
                    "schedules; the exploration is incomplete",
                    operator=self.scenario,
                )
            )
        return diags

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "strategy": self.strategy,
            "expect_violation": self.expect_violation,
            "explored": self.explored,
            "pruned": self.pruned,
            "complete": self.complete,
            "passed": self.passed,
            "violations": [v.to_dict() for v in self.violations],
        }


# --------------------------------------------------------------------- #
# The explorer
# --------------------------------------------------------------------- #


class _ChoiceTape:
    """Prefix-replaying choice recorder for one schedule.

    Within the prefix, choices replay a previously scheduled path; past
    it, the tape takes alternative 0 and pushes every untaken alternative
    (prefix-so-far plus that alternative) onto the shared DFS frontier.
    Consults with a single alternative are forced moves, not choice
    points — they neither consume nor extend the tape.
    """

    def __init__(
        self, prefix: Tuple[int, ...], frontier: List[Tuple[int, ...]]
    ) -> None:
        self.prefix = prefix
        self.frontier = frontier
        self.trace: List[int] = []
        self.labels: List[str] = []

    @property
    def position(self) -> int:
        return len(self.trace)

    def choose(self, alternatives: int, label: str) -> int:
        if alternatives <= 1:
            return 0
        position = len(self.trace)
        if position < len(self.prefix):
            pick = self.prefix[position]
        else:
            pick = 0
            for alternative in range(1, alternatives):
                self.frontier.append(tuple(self.trace) + (alternative,))
        self.trace.append(pick)
        self.labels.append(f"{label}={pick}")
        return pick


def _element_identity(element: StreamElement) -> tuple:
    return (element.start, element.end, repr(element.payload))


def _run_schedule(scenario: Scenario, tape: _ChoiceTape, seen: set):
    """Drive one schedule to completion; returns output or ``_PRUNED``."""
    from ..engine.executor import QueryExecutor
    from ..streams import CollectorSink, PhysicalStream

    streams = scenario.build_streams()
    executor = QueryExecutor(
        sources={name: PhysicalStream(name=name) for name in streams},
        windows=dict(scenario.windows),
        box=scenario.old_box(),
        global_heartbeats=False,
        interval_bound=scenario.interval_bound,
    )
    sink = CollectorSink()
    executor.add_sink(sink)
    strategy = scenario.make_strategy()
    strategy.transition_gate = (
        lambda transition: tape.choose(2, f"gate:{transition}") == 0
    )
    new_box = scenario.new_box()
    pending = {name: list(elements) for name, elements in streams.items()}
    order = sorted(pending)
    migrated = False
    while True:
        options: List[Tuple[str, Optional[str]]] = []
        for name in order:
            if pending[name]:
                options.append(("deliver", name))
        if not migrated:
            options.append(("migrate", None))
        if not options:
            break
        kind, name = options[tape.choose(len(options), "event")]
        if kind == "migrate":
            executor.start_migration(new_box, strategy)
            migrated = True
        else:
            executor.push(name, pending[name].pop(0))
        # State pruning, only strictly past the replayed prefix: aborting
        # mid-replay would orphan frontier entries scheduled downstream.
        if tape.position > len(tape.prefix):
            fingerprint = executor.fingerprint()
            if fingerprint is not None:
                key = (
                    fingerprint,
                    tuple(_element_identity(e) for e in sink.elements),
                    tuple((name, len(pending[name])) for name in order),
                    migrated,
                )
                if key in seen:
                    return _PRUNED
                seen.add(key)
    executor.finish()
    return list(sink.elements)


def check_scenario(
    scenario: Scenario,
    budget: Optional[int] = None,
    metrics: Optional[object] = None,
) -> ModelCheckResult:
    """Exhaustively explore every schedule of ``scenario``.

    ``budget`` caps the total number of schedules (explored + pruned);
    exceeding it marks the result incomplete (``MCK003``) instead of
    running away.  ``metrics`` (a :class:`~repro.engine.metrics.
    MetricsRecorder`) receives the explored/pruned counters.
    """
    if budget is None:
        budget = DEFAULT_BUDGET
    result = ModelCheckResult(
        scenario=scenario.name,
        strategy=scenario.strategy,
        expect_violation=scenario.expect_violation,
    )
    windowed = scenario.windowed_streams()
    oracle = RelationalOracle(windowed)

    frontier: List[Tuple[int, ...]] = [()]
    seen: set = set()
    baseline: Optional[List[StreamElement]] = None
    while frontier:
        if result.explored + result.pruned >= budget:
            result.complete = False
            break
        prefix = frontier.pop()
        tape = _ChoiceTape(prefix, frontier)
        try:
            outcome = _run_schedule(scenario, tape, seen)
        except Exception as exc:
            result.explored += 1
            result.violations.append(
                ScheduleViolation(
                    "MCK001",
                    f"engine error under this schedule: "
                    f"{type(exc).__name__}: {exc}",
                    tuple(tape.labels),
                )
            )
            continue
        if outcome is _PRUNED:
            result.pruned += 1
            continue
        result.explored += 1
        output = outcome
        instants = critical_instants(*windowed.values(), output)
        divergence = oracle.check(scenario.plan, output, instants)
        if divergence is not None:
            result.violations.append(
                ScheduleViolation(
                    "MCK001",
                    f"output diverges from the relational oracle at "
                    f"instant {divergence}",
                    tuple(tape.labels),
                    instant=divergence,
                )
            )
            continue
        if baseline is None:
            baseline = list(output)
        else:
            # Snapshot-equivalence, not byte-equality: migration legally
            # fragments results differently per schedule (GenMig's
            # ``T_split`` depends on when the migration triggers), but
            # every snapshot must agree with the first clean schedule.
            from ..temporal import first_divergence

            instant = first_divergence(baseline, list(output))
            if instant is not None:
                result.violations.append(
                    ScheduleViolation(
                        "MCK002",
                        f"oracle-clean outputs of two schedules are not "
                        f"snapshot-equivalent at instant {instant}: the "
                        "protocol's result depends on event ordering",
                        tuple(tape.labels),
                        instant=instant,
                    )
                )
    if metrics is not None:
        metrics.record_modelcheck(
            scenario.name, result.explored, result.pruned, len(result.violations)
        )
    return result


# --------------------------------------------------------------------- #
# Preset scenarios
# --------------------------------------------------------------------- #


def _figure2_old_box():
    from ..engine.box import Box
    from ..operators import DuplicateElimination, equi_join

    join = equi_join(0, 0, name="join")
    distinct = DuplicateElimination(name="distinct")
    join.subscribe(distinct, 0)
    return Box(
        taps={"A": [(join, 0)], "B": [(join, 1)]}, root=distinct, label="distinct-top"
    )


def _figure2_plan():
    from ..plans.expressions import Comparison, Field
    from ..plans.logical import DistinctNode, JoinNode, Source

    return DistinctNode(
        JoinNode(
            Source("A", ["x"]),
            Source("B", ["y"]),
            Comparison("=", Field("A.x"), Field("B.y")),
        )
    )


#: The Figure 2 / Example 1 data: two partially overlapping windows of the
#: same value, so duplicate elimination must merge across the migration.
_FIGURE2_STREAMS = {"A": (("a", 50), ("a", 70)), "B": (("a", 20), ("a", 90))}
_FIGURE2_WINDOWS = {"A": 100, "B": 100}


def _left_deep_box():
    from ..engine.box import Box
    from ..operators import equi_join

    j1 = equi_join(0, 0, name="AB")
    j2 = equi_join(0, 0, name="ABC")
    j1.subscribe(j2, 0)
    return Box(
        taps={"A": [(j1, 0)], "B": [(j1, 1)], "C": [(j2, 1)]},
        root=j2,
        label="left-deep",
    )


def _right_deep_box():
    from ..engine.box import Box
    from ..operators import equi_join

    j1 = equi_join(0, 0, name="BC")
    j2 = equi_join(0, 0, name="ABC")
    j1.subscribe(j2, 1)
    return Box(
        taps={"A": [(j2, 0)], "B": [(j1, 0)], "C": [(j1, 1)]},
        root=j2,
        label="right-deep",
    )


def _three_way_plan():
    from ..plans.expressions import Comparison, Field
    from ..plans.logical import JoinNode, Source

    return JoinNode(
        JoinNode(
            Source("A", ["k"]),
            Source("B", ["k"]),
            Comparison("=", Field("A.k"), Field("B.k")),
        ),
        Source("C", ["k"]),
        Comparison("=", Field("A.k"), Field("C.k")),
    )


_JOINS_STREAMS = {"A": (("a", 5), ("a", 12)), "B": (("a", 8),), "C": (("a", 10),)}
_JOINS_WINDOWS = {"A": 20, "B": 20, "C": 20}

#: Fluid needs keys in *both* hash ranges of ``FluidMigration(ranges=2)``:
#: ``shard_of('a', 2) == 0`` and ``shard_of('b', 2) == 1``, so the 'b'
#: element crosses the frontier while range 0 is in flight, and the late
#: 'a' element probes range 0's seeded state after its flip.
_FLUID_STREAMS = {
    "A": (("a", 5), ("b", 6), ("a", 12)),
    "B": (("a", 8),),
    "C": (("a", 10),),
}


def _pt_figure2() -> Scenario:
    from ..core.parallel_track import ParallelTrack

    return Scenario(
        name="pt-figure2",
        description=(
            "Parallel Track forced onto the Figure 2 distinct push-down: "
            "the paper's counter-example, expected to violate snapshot "
            "equivalence under (at least) the schedules that trigger the "
            "migration mid-stream"
        ),
        strategy=PARALLEL_TRACK,
        streams=dict(_FIGURE2_STREAMS),
        windows=dict(_FIGURE2_WINDOWS),
        old_box=_figure2_old_box,
        new_box=_figure2_pushdown_box,
        make_strategy=lambda: ParallelTrack(force=True),
        plan=_figure2_plan(),
        expect_violation=True,
    )


def _figure2_pushdown_box():
    from ..engine.box import Box
    from ..operators import DuplicateElimination, equi_join

    da = DuplicateElimination(name="dA")
    db = DuplicateElimination(name="dB")
    join = equi_join(0, 0, name="join")
    da.subscribe(join, 0)
    db.subscribe(join, 1)
    return Box(
        taps={"A": [(da, 0)], "B": [(db, 0)]}, root=join, label="distinct-pushed"
    )


def _genmig_figure2() -> Scenario:
    from ..core.genmig import GenMig

    return Scenario(
        name="genmig-figure2",
        description=(
            "GenMig on the same Figure 2 plan pair: the general strategy "
            "must be snapshot-correct under every schedule"
        ),
        strategy=GENMIG,
        streams=dict(_FIGURE2_STREAMS),
        windows=dict(_FIGURE2_WINDOWS),
        old_box=_figure2_old_box,
        new_box=_figure2_pushdown_box,
        make_strategy=GenMig,
        plan=_figure2_plan(),
    )


def _pt_joins() -> Scenario:
    from ..core.parallel_track import ParallelTrack

    return Scenario(
        name="pt-joins",
        description=(
            "Parallel Track on a 3-way join reordering (left-deep to "
            "right-deep): PT's declared-sound territory, checked under "
            "every schedule"
        ),
        strategy=PARALLEL_TRACK,
        streams=dict(_JOINS_STREAMS),
        windows=dict(_JOINS_WINDOWS),
        old_box=_left_deep_box,
        new_box=_right_deep_box,
        make_strategy=ParallelTrack,
        plan=_three_way_plan(),
    )


def _rp_joins() -> Scenario:
    from ..core.reference_point import ReferencePointGenMig

    return Scenario(
        name="rp-joins",
        description=(
            "Reference-point GenMig on the 3-way join reordering: the "
            "coalesce-free optimization's drain/seed handoff under every "
            "schedule"
        ),
        strategy=REFERENCE_POINT,
        streams=dict(_JOINS_STREAMS),
        windows=dict(_JOINS_WINDOWS),
        old_box=_left_deep_box,
        new_box=_right_deep_box,
        make_strategy=ReferencePointGenMig,
        plan=_three_way_plan(),
    )


def _fluid_joins() -> Scenario:
    from ..core.fluid import FluidMigration

    return Scenario(
        name="fluid-joins",
        description=(
            "Fluid migration on the 3-way join reordering with join keys "
            "in both hash ranges: the per-range drain/seed/flip handover "
            "behind the routing frontier, under every schedule"
        ),
        strategy=FLUID,
        streams=dict(_FLUID_STREAMS),
        windows=dict(_JOINS_WINDOWS),
        old_box=_left_deep_box,
        new_box=_right_deep_box,
        make_strategy=lambda: FluidMigration(ranges=2),
        plan=_three_way_plan(),
    )


PRESETS: Dict[str, Callable[[], Scenario]] = {
    "pt-figure2": _pt_figure2,
    "genmig-figure2": _genmig_figure2,
    "pt-joins": _pt_joins,
    "rp-joins": _rp_joins,
    "fluid-joins": _fluid_joins,
}


def build_scenario(name: str) -> Scenario:
    """Instantiate a preset scenario by name."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; presets: {', '.join(sorted(PRESETS))}"
        ) from None


# --------------------------------------------------------------------- #
# Seeded bugs (CI loud-failure checks)
# --------------------------------------------------------------------- #


def _early_split_strategy():
    """GenMig with a deliberately early ``T_split``.

    Undercuts Lemma 1's requirement that ``T_split`` exceed every time
    instant the old box can reference: state already inside the old box
    keeps validity beyond the split, so old- and new-box results collide
    — the checker must surface MCK001 on the schedules that trigger the
    migration after deliveries.
    """
    from ..core.genmig import GenMig
    from ..temporal.time import EPSILON

    class _EarlySplitGenMig(GenMig):
        name = "genmig-early-split"

        def _compute_t_split(self, executor):
            latest = max(
                (
                    wm
                    for name, wm in executor.source_watermarks.items()
                    if executor.source_seen[name]
                ),
                default=0,
            )
            return latest + executor.interval_bound - EPSILON

    return _EarlySplitGenMig()


def _early_flip_strategy():
    """Fluid migration that flips the frontier *before* the range drain.

    The correct protocol drains the old box's state for a range and seeds
    the new box within the same tick the frontier flips; this bug flips
    first and lets the drain land one ``after_event`` tick late.  An
    element of the flipped range delivered in that window probes the new
    box's still-unseeded state, silently missing join results — the
    checker must surface MCK001 on the schedules that interleave a
    delivery into the gap.
    """
    from ..core.fluid import FluidMigration

    class _EarlyFlipFluid(FluidMigration):
        name = "fluid-early-flip"

        def __init__(self) -> None:
            super().__init__(ranges=2)
            self._owed: List[int] = []

        def _migrate_range(self, executor, index: int) -> None:
            # BUG: frontier flips now, drain deferred to the next tick.
            self._flip_range(executor, index)
            self._owed.append(index)

        def after_event(self, executor) -> None:
            owed, self._owed = self._owed, []
            for index in owed:
                self._drain_range(executor, index)
            super().after_event(executor)

    return _EarlyFlipFluid()


#: Deliberate protocol bugs, injectable via ``--seed-bug``: each maps a
#: scenario to a broken variant so CI can assert the checker fails loudly.
SEED_BUGS = ("early-split", "early-flip")

_BUG_STRATEGIES = {
    "early-split": (_early_split_strategy, "early T_split"),
    "early-flip": (_early_flip_strategy, "frontier flip before range drain"),
}


def seed_bug(scenario: Scenario, bug: str) -> Scenario:
    """Return a copy of ``scenario`` with a deliberate protocol bug."""
    if bug in _BUG_STRATEGIES:
        make_strategy, detail = _BUG_STRATEGIES[bug]
        return Scenario(
            name=f"{scenario.name}+{bug}",
            description=f"{scenario.description} [seeded bug: {detail}]",
            strategy=scenario.strategy,
            streams=scenario.streams,
            windows=scenario.windows,
            old_box=scenario.old_box,
            new_box=scenario.new_box,
            make_strategy=make_strategy,
            plan=scenario.plan,
            expect_violation=scenario.expect_violation,
            interval_bound=scenario.interval_bound,
        )
    raise KeyError(f"unknown seeded bug {bug!r}; known: {', '.join(SEED_BUGS)}")


# --------------------------------------------------------------------- #
# Command line (dispatched from ``python -m repro.analysis modelcheck``)
# --------------------------------------------------------------------- #


def run_cli(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    from .races import SHARD_PRESETS, build_shard_scenario

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis modelcheck",
        description=(
            "Exhaustively explore every schedule of bounded migration and "
            "shard-merge scenarios, checking snapshot equivalence against "
            "the relational oracle."
        ),
    )
    parser.add_argument(
        "--preset",
        action="append",
        default=[],
        metavar="NAME",
        help="scenario preset to check (repeatable)",
    )
    parser.add_argument(
        "--all", action="store_true", help="check every preset scenario"
    )
    parser.add_argument(
        "--list", action="store_true", help="list preset scenarios and exit"
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_BUDGET,
        help=f"schedule budget per scenario (default {DEFAULT_BUDGET})",
    )
    parser.add_argument(
        "--seed-bug",
        choices=SEED_BUGS + ("unordered-pump", "drop-command"),
        help="inject a deliberate protocol bug (CI loud-failure check)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit results as JSON"
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list:
        for name in sorted(PRESETS):
            print(f"{name:18} {PRESETS[name]().description}")
        for name in sorted(SHARD_PRESETS):
            print(f"{name:18} {build_shard_scenario(name).description}")
        return 0

    names = list(args.preset)
    if args.all or not names:
        names = sorted(PRESETS) + sorted(SHARD_PRESETS)

    results = []
    failed = False
    for name in names:
        if name in PRESETS:
            scenario = build_scenario(name)
            if args.seed_bug in SEED_BUGS:
                scenario = seed_bug(scenario, args.seed_bug)
            result = check_scenario(scenario, budget=args.budget)
        elif name in SHARD_PRESETS:
            shard_scenario = build_shard_scenario(name)
            if args.seed_bug in ("unordered-pump", "drop-command"):
                from .races import seed_shard_bug

                shard_scenario = seed_shard_bug(shard_scenario, args.seed_bug)
            result = shard_scenario.run_check(budget=args.budget)
        else:
            print(f"error: unknown preset {name!r}", file=sys.stderr)
            return 2
        results.append(result)
        if not result.passed:
            failed = True
        if not args.json:
            status = "ok" if result.passed else "FAIL"
            print(
                f"{result.scenario:24} {status:4} "
                f"explored={result.explored} pruned={result.pruned} "
                f"violations={len(result.violations)}"
                + ("" if result.complete else " (budget exhausted)")
            )
            for diagnostic in result.diagnostics():
                print(f"  {diagnostic}")
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2, default=str))
    return 1 if failed else 0
