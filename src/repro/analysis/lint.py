"""Project-specific AST lint rules for the engine code itself.

Generic linters cannot know this codebase's temporal contract, so three
rules are enforced here with the stdlib ``ast`` module (no third-party
dependency — ``ruff``/``mypy`` run additionally in CI):

``RLB001``
    No wall-clock reads under ``engine/``, ``operators/`` or
    ``recovery/``.  The executor is a deterministic application-time
    simulator (the paper's sufficient-resources assumption, Section 4.4);
    a single ``time.time()`` in an operator makes runs irreproducible and
    couples snapshots to the host clock — and a wall clock in checkpoint
    or replay code would make recovery itself nondeterministic.

``RLB002``
    A class overriding ``_on_watermark`` must purge through a sweep-area
    API (``expire``/``expire_before``/``evict``/``evict_until``/
    ``drain``) somewhere in its body.  Hand-rolled purge loops bypass the
    expiry index and the incremental state accounting, which the memory
    metrics and migration-progress checks are built on.

``RLB003``
    A ``StatefulOperator`` subclass overriding ``process_batch`` must
    define ``_on_run_tail`` or explicitly declare ``batch_fallback =
    True``.  The batch fast path defers per-element advances; an override
    that ignores the run-tail hook silently loses the amortisation or,
    worse, the element-protocol equivalence.

``RLB004``
    Kernel-compiler inputs must be side-effect-free *expression trees*:
    no ``lambda`` (or locally defined function) may be passed into
    ``FusedStep``/``select_step``/``project_step``/``compile_kernel``/
    ``FusedStateless``.  A bare callable cannot be inlined into generated
    source, defeats the structural compile-cache key, and — unlike an
    ``Expression`` — carries no side-effect-freedom contract, so a
    stateful closure could silently break the fused/unfused
    byte-identity the engine guarantees.

``RLB005``
    Code outside ``temporal/`` must not reach into a batch's column
    internals (``_starts``/``_ends``/``_rows``/``_flags``/``_cached``) —
    only the ``ColumnarBatch`` read API (``starts``/``ends``/``rows``/
    ``flags``/``column``/``runs``) is stable.  Direct pokes bypass the
    lazy-materialisation cache and would silently desynchronise the
    columns from the boxed-element view.

``RLB006``
    Code under ``recovery/`` must not construct physical operators
    directly — a restored plan must come out of ``PhysicalBuilder`` (or
    the service registry, which delegates to it) so it is structurally
    identical to the plan the snapshot was taken from.  A hand-built
    operator would bypass fusion/columnar decisions and the verifier,
    silently breaking the restore-time plan match.

``RLB007``
    Process and thread primitives (``multiprocessing``, ``threading``,
    ``concurrent.futures``, ``subprocess``, ``os.fork``/``os.pipe``/
    ``os.exec*``) are importable only inside ``engine/transport.py`` —
    the single module that owns cross-process plumbing.  Everywhere else
    the engine must stay a deterministic single-threaded simulator that
    reaches other shards exclusively through the ``Transport``
    abstraction; a stray ``Process``/``Thread`` elsewhere would smuggle
    scheduling nondeterminism past the snapshot-equivalence oracle.

``RLB008``
    The router↔worker wire protocol is private: outside
    ``engine/transport.py`` (its owner) and ``analysis/races.py`` (the
    race-detector instrumentation) no code may construct a
    ``ShardServer`` directly or reach into a channel's reply plumbing
    (``_replies``/``_reader``).  Workers must be launched through
    ``Transport.launch`` — a hand-built server or a poked reply buffer
    bypasses the reply accounting the ordered merge pump and the race
    detector are built on.

``RLB009``
    No module-level mutable literals (``[]``/``{}``/``list()``/
    ``dict()``/``set()``) under ``engine/`` or ``operators/`` (the
    conventional ``__all__`` excepted).  Module state is shared across
    every executor in the process: the model checker replays thousands
    of schedules per process and sharded workers may be in-process, so a
    module-level cache or registry would leak state between runs and
    turn into a lost-update race under a threaded transport.  Use
    immutable constants (tuples, ``frozenset``) or instance state.

Run locally or in CI::

    PYTHONPATH=src python -m repro.analysis.lint [paths...] [--format github]

Exit status is 1 when any finding is reported.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Sweep-area purge entry points recognised by RLB002.
PURGE_APIS = frozenset({"expire", "expire_before", "evict", "evict_until", "drain"})

#: (module, attribute) pairs whose call is a wall-clock read (RLB001).
WALL_CLOCKS = frozenset(
    {
        ("time", "time"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "today"),
        ("datetime", "utcnow"),
    }
)

#: Directories (path components) in which RLB001 applies.
WALL_CLOCK_SCOPE = ("engine", "operators", "recovery")

#: Kernel-compiler entry points whose inputs RLB004 checks: their
#: expression arguments must be Expression trees, never bare callables.
KERNEL_APIS = frozenset(
    {"FusedStep", "FusedStateless", "compile_kernel", "select_step", "project_step"}
)

#: Column-storage slots of ``ColumnarBatch`` that are private to the
#: temporal layer (RLB005); everything else goes through the read API.
COLUMN_INTERNALS = frozenset({"_starts", "_ends", "_rows", "_flags", "_cached"})

#: Directory (path component) exempt from RLB005: the layer that owns
#: the columnar layout.
COLUMN_SCOPE_EXEMPT = ("temporal",)

#: Physical operator classes recovery code must not construct (RLB006);
#: plan construction is ``PhysicalBuilder``'s monopoly.
OPERATOR_CLASSES = frozenset(
    {
        "Aggregate",
        "Coalesce",
        "CountWindow",
        "Difference",
        "DuplicateElimination",
        "FusedStateless",
        "HashJoin",
        "NestedLoopsJoin",
        "NowWindow",
        "Project",
        "Router",
        "Select",
        "Split",
        "TimeWindow",
        "UnboundedWindow",
        "Union",
    }
)

#: Directory (path component) in which RLB006 applies.
RECOVERY_SCOPE = ("recovery",)

#: Modules whose import is a process/thread primitive (RLB007).
PROCESS_MODULES = frozenset(
    {"multiprocessing", "threading", "concurrent.futures", "subprocess", "_thread"}
)

#: ``os`` attributes that spawn processes or raw pipes (RLB007); plain
#: ``os.environ``/``os.path`` use stays legal everywhere.
PROCESS_OS_ATTRS = frozenset(
    {"fork", "forkpty", "pipe", "pipe2", "popen", "posix_spawn", "posix_spawnp"}
    | {f"exec{s}" for s in ("l", "le", "lp", "lpe", "v", "ve", "vp", "vpe")}
    | {f"spawn{s}" for s in ("l", "le", "lp", "lpe", "v", "ve", "vp", "vpe")}
)

#: The one module allowed to touch process primitives (RLB007).
TRANSPORT_MODULE = ("engine", "transport.py")

#: Channel reply-plumbing attributes private to the transport (RLB008).
CHANNEL_INTERNALS = frozenset({"_replies", "_reader"})

#: Modules (trailing path components) allowed to construct ShardServer
#: and touch channel internals (RLB008): the transport itself and the
#: race-detector instrumentation built on it.
TRANSPORT_INTERNAL_EXEMPT = (("engine", "transport.py"), ("analysis", "races.py"))

#: Directories (path components) in which RLB009 applies.
MUTABLE_GLOBAL_SCOPE = ("engine", "operators")

#: Module-level names RLB009 never flags.
MUTABLE_GLOBAL_EXEMPT = frozenset({"__all__"})


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }

    def github_annotation(self) -> str:
        """GitHub Actions workflow-command form (``--format github``)."""
        message = self.message.replace("%", "%25").replace("\n", "%0A")
        return (
            f"::error file={self.path},line={self.line},"
            f"title={self.code}::{message}"
        )


# --------------------------------------------------------------------- #
# Per-module facts
# --------------------------------------------------------------------- #


@dataclass
class _ClassFacts:
    """What one class definition tells the rules."""

    name: str
    line: int
    bases: Tuple[str, ...]
    methods: Set[str]
    assigns: Set[str]
    watermark_def: Optional[ast.FunctionDef]
    process_batch_def: Optional[ast.FunctionDef]
    calls_purge_api: bool


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _scan_class(node: ast.ClassDef) -> _ClassFacts:
    methods: Set[str] = set()
    assigns: Set[str] = set()
    watermark_def: Optional[ast.FunctionDef] = None
    process_batch_def: Optional[ast.FunctionDef] = None
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(item.name)
            if item.name == "_on_watermark" and isinstance(item, ast.FunctionDef):
                watermark_def = item
            if item.name == "process_batch" and isinstance(item, ast.FunctionDef):
                process_batch_def = item
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    assigns.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            assigns.add(item.target.id)
    calls_purge = False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            callee = sub.func
            name = None
            if isinstance(callee, ast.Attribute):
                name = callee.attr
            elif isinstance(callee, ast.Name):
                name = callee.id
            if name in PURGE_APIS:
                calls_purge = True
                break
    return _ClassFacts(
        name=node.name,
        line=node.lineno,
        bases=tuple(b for b in (_base_name(base) for base in node.bases) if b),
        methods=methods,
        assigns=assigns,
        watermark_def=watermark_def,
        process_batch_def=process_batch_def,
        calls_purge_api=calls_purge,
    )


def _wall_clock_findings(tree: ast.AST, path: str) -> List[LintFinding]:
    #: local alias → (module, attribute) from ``from time import monotonic``.
    aliased: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in ("time", "datetime"):
            for alias in node.names:
                aliased[alias.asname or alias.name] = (node.module, alias.name)
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        hit: Optional[Tuple[str, str]] = None
        if isinstance(callee, ast.Attribute) and isinstance(callee.value, ast.Name):
            candidate = (callee.value.id, callee.attr)
            if candidate in WALL_CLOCKS:
                hit = candidate
        elif isinstance(callee, ast.Name) and callee.id in aliased:
            candidate = aliased[callee.id]
            if candidate in WALL_CLOCKS:
                hit = candidate
        if hit is not None:
            findings.append(
                LintFinding(
                    path,
                    node.lineno,
                    "RLB001",
                    f"wall-clock read {hit[0]}.{hit[1]}() in engine/operator "
                    "code: the executor is a deterministic application-time "
                    "simulator; derive time from stream elements instead",
                )
            )
    return findings


def _kernel_input_findings(tree: ast.AST, path: str) -> List[LintFinding]:
    """RLB004: no bare callables in kernel-compiler inputs.

    Flags a ``lambda`` anywhere inside an argument to a kernel API, and a
    plain name argument that resolves to a function defined in the same
    module.  Expression trees are the only inspectable, cacheable,
    side-effect-free currency the kernel compiler accepts.
    """
    defined_functions: Set[str] = {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = None
        if isinstance(callee, ast.Attribute):
            name = callee.attr
        elif isinstance(callee, ast.Name):
            name = callee.id
        if name not in KERNEL_APIS:
            continue
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for argument in arguments:
            offender: Optional[ast.AST] = None
            what = ""
            for sub in ast.walk(argument):
                if isinstance(sub, ast.Lambda):
                    offender, what = sub, "a lambda"
                    break
                if isinstance(sub, ast.Name) and sub.id in defined_functions:
                    offender, what = sub, f"function {sub.id!r}"
                    break
            if offender is not None:
                findings.append(
                    LintFinding(
                        path,
                        getattr(offender, "lineno", node.lineno),
                        "RLB004",
                        f"{name}() receives {what}: kernel inputs must be "
                        "side-effect-free Expression trees — a bare callable "
                        "cannot be inlined into generated source, breaks the "
                        "structural compile-cache key, and may smuggle side "
                        "effects into a fused chain",
                    )
                )
    return findings


def _operator_construction_findings(tree: ast.AST, path: str) -> List[LintFinding]:
    """RLB006: recovery code must not construct operators directly.

    Flags any call whose callee name (plain or attribute) is a physical
    operator class.  Name-based, like the rest of this linter: the
    operator class names are unique in the codebase, and a false match on
    a same-named helper is the conservative direction for recovery code.
    """
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = None
        if isinstance(callee, ast.Attribute):
            name = callee.attr
        elif isinstance(callee, ast.Name):
            name = callee.id
        if name in OPERATOR_CLASSES:
            findings.append(
                LintFinding(
                    path,
                    node.lineno,
                    "RLB006",
                    f"recovery code constructs operator {name}() directly: "
                    "restored plans must come out of PhysicalBuilder so "
                    "they are structurally identical to the checkpointed "
                    "plan (fusion/columnar decisions included)",
                )
            )
    return findings


def _column_internal_findings(tree: ast.AST, path: str) -> List[LintFinding]:
    """RLB005: no column-internal attribute access outside ``temporal/``.

    Any ``x._starts``-style read or write is flagged; the rule is
    attribute-name based (like the rest of this linter) because the
    columnar slots are deliberately named to collide with nothing else
    in the codebase.
    """
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr in COLUMN_INTERNALS:
            findings.append(
                LintFinding(
                    path,
                    node.lineno,
                    "RLB005",
                    f"direct access to column internal {node.attr!r} outside "
                    "temporal/: use the ColumnarBatch read API (starts/ends/"
                    "rows/flags/column/runs) — poking the slots bypasses the "
                    "lazy-materialisation cache and can desynchronise the "
                    "columns from the boxed-element view",
                )
            )
    return findings


def _process_primitive_findings(tree: ast.AST, path: str) -> List[LintFinding]:
    """RLB007: process/thread primitives live in ``engine/transport.py`` only.

    Flags ``import multiprocessing``-style statements (module or
    ``from``-import, submodules included) and ``os.fork()``-family calls.
    Import detection is static and unconditional — even an import inside
    a function body or ``TYPE_CHECKING`` block is flagged, because the
    capability itself is what the Transport abstraction quarantines.
    """

    def module_hit(module: str) -> Optional[str]:
        for banned in PROCESS_MODULES:
            if module == banned or module.startswith(banned + "."):
                return banned
        return None

    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        hit: Optional[str] = None
        line = getattr(node, "lineno", 0)
        if isinstance(node, ast.Import):
            for alias in node.names:
                hit = module_hit(alias.name)
                if hit:
                    break
        elif isinstance(node, ast.ImportFrom) and node.module:
            hit = module_hit(node.module)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
            and node.func.attr in PROCESS_OS_ATTRS
        ):
            hit = f"os.{node.func.attr}"
        if hit is not None:
            findings.append(
                LintFinding(
                    path,
                    line,
                    "RLB007",
                    f"process primitive {hit!r} outside engine/transport.py: "
                    "cross-process plumbing is the Transport abstraction's "
                    "monopoly — everywhere else the engine is a deterministic "
                    "single-threaded simulator, and a stray process/thread "
                    "would smuggle scheduling nondeterminism past the "
                    "snapshot-equivalence oracle",
                )
            )
    return findings


def _transport_internal_findings(tree: ast.AST, path: str) -> List[LintFinding]:
    """RLB008: the router↔worker protocol is transport.py's monopoly.

    Flags direct ``ShardServer(...)`` construction and any access to a
    channel's reply plumbing (``_replies``/``_reader``).  Name-based like
    the rest of this linter; both names are unique to the transport.
    """
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            callee = node.func
            name = None
            if isinstance(callee, ast.Attribute):
                name = callee.attr
            elif isinstance(callee, ast.Name):
                name = callee.id
            if name == "ShardServer":
                findings.append(
                    LintFinding(
                        path,
                        node.lineno,
                        "RLB008",
                        "ShardServer constructed outside engine/transport.py: "
                        "workers must be launched through Transport.launch so "
                        "the reply accounting the ordered merge pump (and the "
                        "race detector) depend on stays intact",
                    )
                )
        elif isinstance(node, ast.Attribute) and node.attr in CHANNEL_INTERNALS:
            findings.append(
                LintFinding(
                    path,
                    node.lineno,
                    "RLB008",
                    f"access to channel internal {node.attr!r} outside "
                    "engine/transport.py: the reply plumbing is private — "
                    "use send/poll/recv, which the race detector instruments",
                )
            )
    return findings


def _mutable_global_findings(tree: ast.AST, path: str) -> List[LintFinding]:
    """RLB009: no module-level mutable literals in engine/operator code.

    Flags top-level assignments whose value is a list/dict/set literal or
    a bare ``list()``/``dict()``/``set()`` call.  Module state is shared
    by every executor in the process — schedule replays and in-process
    shard workers would leak state through it.
    """
    findings: List[LintFinding] = []
    if not isinstance(tree, ast.Module):
        return findings
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names or all(name in MUTABLE_GLOBAL_EXEMPT for name in names):
            continue
        mutable: Optional[str] = None
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            mutable = type(value).__name__.lower()
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "dict", "set")
        ):
            mutable = f"{value.func.id}()"
        if mutable is not None:
            findings.append(
                LintFinding(
                    path,
                    node.lineno,
                    "RLB009",
                    f"module-level mutable {mutable} {names[0]!r} in engine/"
                    "operator code: module state is shared across every "
                    "executor and schedule replay in the process — use a "
                    "tuple/frozenset constant or instance state",
                )
            )
    return findings


# --------------------------------------------------------------------- #
# The linter
# --------------------------------------------------------------------- #


class Linter:
    """Two-pass linter: collect class facts everywhere, then apply rules."""

    def __init__(self) -> None:
        self._modules: List[Tuple[str, ast.AST, List[_ClassFacts]]] = []
        self._hierarchy: Dict[str, Tuple[str, ...]] = {}

    def add_source(self, code: str, path: str) -> None:
        tree = ast.parse(code, filename=path)
        facts = [
            _scan_class(node)
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        ]
        for cls in facts:
            self._hierarchy[cls.name] = cls.bases
        self._modules.append((path, tree, facts))

    def add_path(self, path: Path) -> None:
        self.add_source(path.read_text(encoding="utf-8"), str(path))

    def _is_stateful(self, name: str, seen: Optional[Set[str]] = None) -> bool:
        """Whether ``name`` transitively derives from StatefulOperator.

        Resolution is by class *name* across all scanned modules — sound
        for this codebase's flat namespace, and the conservative direction
        for a linter (an unknown base simply does not match).
        """
        if name == "StatefulOperator":
            return True
        seen = seen or set()
        if name in seen:
            return False
        seen.add(name)
        return any(
            self._is_stateful(base, seen) for base in self._hierarchy.get(name, ())
        )

    def run(self) -> List[LintFinding]:
        findings: List[LintFinding] = []
        for path, tree, classes in self._modules:
            parts = Path(path).parts
            if any(scope in parts for scope in WALL_CLOCK_SCOPE):
                findings.extend(_wall_clock_findings(tree, path))
            findings.extend(_kernel_input_findings(tree, path))
            if not any(scope in parts for scope in COLUMN_SCOPE_EXEMPT):
                findings.extend(_column_internal_findings(tree, path))
            if any(scope in parts for scope in RECOVERY_SCOPE):
                findings.extend(_operator_construction_findings(tree, path))
            if parts[-2:] != TRANSPORT_MODULE:
                findings.extend(_process_primitive_findings(tree, path))
            if all(parts[-2:] != exempt for exempt in TRANSPORT_INTERNAL_EXEMPT):
                findings.extend(_transport_internal_findings(tree, path))
            if any(scope in parts for scope in MUTABLE_GLOBAL_SCOPE):
                findings.extend(_mutable_global_findings(tree, path))
            for cls in classes:
                findings.extend(self._class_findings(path, cls))
        return findings

    def _class_findings(self, path: str, cls: _ClassFacts) -> List[LintFinding]:
        findings: List[LintFinding] = []
        if (
            cls.watermark_def is not None
            and cls.name != "Operator"
            and not cls.calls_purge_api
        ):
            findings.append(
                LintFinding(
                    path,
                    cls.watermark_def.lineno,
                    "RLB002",
                    f"{cls.name}._on_watermark purges without a sweep-area "
                    f"API ({', '.join(sorted(PURGE_APIS))}): hand-rolled "
                    "purge loops bypass the expiry index and the "
                    "incremental state accounting",
                )
            )
        if (
            cls.process_batch_def is not None
            and cls.name != "StatefulOperator"
            and self._is_stateful(cls.name)
            and "_on_run_tail" not in cls.methods
            and "batch_fallback" not in cls.assigns
        ):
            findings.append(
                LintFinding(
                    path,
                    cls.process_batch_def.lineno,
                    "RLB003",
                    f"{cls.name} overrides process_batch without defining "
                    "_on_run_tail or declaring `batch_fallback = True`: "
                    "batch overrides must either handle the run tail or "
                    "opt out of the amortised path explicitly",
                )
            )
        return findings


def lint_source(code: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one source string (single-module hierarchy)."""
    linter = Linter()
    linter.add_source(code, path)
    return linter.run()


def lint_paths(paths: Iterable[Path]) -> List[LintFinding]:
    """Lint ``.py`` files under the given files/directories."""
    linter = Linter()
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                linter.add_path(file)
        else:
            linter.add_path(path)
    return linter.run()


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Project-specific AST lint rules (RLB001-RLB009).",
    )
    parser.add_argument("paths", nargs="*", help="files/directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format: plain text (default), a JSON array, or "
        "GitHub Actions ::error annotations",
    )
    try:
        args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    targets = args.paths
    if not targets:
        root = Path(__file__).resolve().parents[1]  # src/repro
        targets = [str(root)]
    findings = lint_paths(Path(target) for target in targets)
    if args.format == "json":
        import json

        print(json.dumps([f.to_dict() for f in findings], indent=2))
    elif args.format == "github":
        for finding in findings:
            print(finding.github_annotation())
    else:
        for finding in findings:
            print(finding)
    if findings:
        print(f"{len(findings)} lint finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
