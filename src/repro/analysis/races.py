"""Happens-before race detection for the transport / sharded layer.

The sharded router's byte-identical-merge guarantee (see
:mod:`repro.engine.sharded`) is a concurrency claim: whatever order shard
replies *arrive* in, the router must emit completed actions in global
sequence order, merging broadcast parts deterministically.  On a real
process transport arrival order is scheduler-dependent; this module makes
it a **model-checked choice** instead:

* :class:`RecordingTransport` wraps the in-process transport with
  reply-release control: every ``poll`` consults the explorer's choice
  tape, releasing or withholding each buffered reply — so the explorer
  drives the router through every reply arrival order a real transport
  could produce.  Blocking ``recv`` always delivers (FIFO), keeping every
  schedule deadlock-free.
* Channels carry **vector clocks**: sends merge the router's clock into
  the shard's, deliveries merge the shard's back — recording the
  happens-before order actually established, so concurrent (racy)
  deliveries are identifiable in the event log.
* The router's :attr:`~repro.engine.sharded.ShardedExecutor.
  on_action_emitted` hook audits the global emission order (``RAC001``
  on any sequence regression — a merge-reordering race), the output is
  byte-compared against a single-process reference run (lost updates
  surface as divergence), and unaccounted replies at ``finish`` surface
  as ``RAC002`` (a lost reply).
* The ``shard-checkpoint`` preset drives the quiesced-cut checkpoint
  protocol mid-stream and restores under a *different* shard count,
  checking the barrier against every withheld-reply schedule.

Deliberate bugs for CI loud-failure checks (:func:`seed_shard_bug`):
``unordered-pump`` replaces the router's ordered pump with arrival-order
emission (the lost-ordering race the real pump prevents), and
``drop-command`` silently drops one broadcast command on one shard (a
lost update the reply accounting must catch).

Run via ``python -m repro.analysis modelcheck --preset shard-merge``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..temporal.time import Time
from .modelcheck import (
    DEFAULT_BUDGET,
    ModelCheckResult,
    ScheduleViolation,
    _PRUNED,
    _ChoiceTape,
    _element_identity,
)

#: The verdict bucket shard-race findings demote: transport races are not
#: specific to one migration strategy, so ``verify_migration`` applies
#: them to every strategy.
TRANSPORT = "transport"


def _merge_vectors(a: List[int], b: Sequence[int]) -> List[int]:
    return [max(x, y) for x, y in zip(a, b)]


class RecordingTransport:
    """In-process shard transport with tape-controlled reply release.

    Duck-types :class:`~repro.engine.transport.Transport` for the sharded
    router.  Component 0 of every vector clock is the router; component
    ``i + 1`` is shard ``i``.
    """

    def __init__(
        self,
        tape: Optional[_ChoiceTape] = None,
        drop_adv_on_shard: Optional[int] = None,
        withhold_budget: int = 2,
    ) -> None:
        self.tape = tape
        #: Preemption bound (iterative context bounding): at most this
        #: many *withhold* decisions per schedule consult the tape; once
        #: spent, replies release deterministically.  Reordering races
        #: need only one withhold to manifest, and the bound keeps the
        #: schedule tree polynomial instead of exponential.
        self.withhold_budget = withhold_budget
        self.withholds = 0
        self.channels: List[RecordingChannel] = []
        #: Happens-before event log: ``send`` and ``deliver`` entries with
        #: vector-clock stamps.
        self.events: List[Dict[str, Any]] = []
        self.router_vector: List[int] = []
        self._drop_adv_on_shard = drop_adv_on_shard

    def source_queue(self, name: str, elements=()):  # pragma: no cover
        from ..engine.queues import SourceQueue

        return SourceQueue(name, elements)

    def launch(self, count: int, bootstrap: Dict[str, Any]) -> List["RecordingChannel"]:
        from ..engine.sharded import ShardServer

        self.router_vector = [0] * (count + 1)
        self.channels = [
            RecordingChannel(ShardServer(bootstrap, index), index, self)
            for index in range(count)
        ]
        return list(self.channels)

    def shutdown(self) -> None:
        pass

    def concurrent_deliveries(self) -> int:
        """Cross-shard event pairs unordered by happens-before.

        A shard's processing (its ``send`` event, stamped with the channel
        clock) is concurrent with router-side events that occur before the
        reply is delivered — the vector-clock evidence that a reply was
        genuinely in flight while the router raced ahead.
        """
        events = self.events
        count = 0
        for i, first in enumerate(events):
            for second in events[i + 1 :]:
                if first["shard"] == second["shard"]:
                    continue
                u, v = first["vector"], second["vector"]
                if not all(x <= y for x, y in zip(u, v)) and not all(
                    x >= y for x, y in zip(u, v)
                ):
                    count += 1
        return count


class RecordingChannel:
    """Synchronous shard channel whose reply *release* the tape controls.

    Replies are computed eagerly at ``send`` (the worker is in-process)
    but buffered; ``poll`` releases a tape-chosen prefix of the buffer,
    modelling replies still in flight.  ``recv`` always delivers the
    oldest buffered reply — blocking receives cannot be starved, so every
    explored schedule terminates.
    """

    def __init__(self, server: Any, index: int, transport: RecordingTransport) -> None:
        self._server = server
        self.index = index
        self._transport = transport
        self._arrived: List[List[tuple]] = []
        self._closed = False
        self.sent = 0
        self.released = 0
        self.vector = [0] * (len(transport.router_vector) or 1)
        self._dropped_adv = False

    def send(self, message: List[tuple]) -> None:
        from ..engine.transport import TransportError

        if self._closed:
            raise TransportError("channel is closed")
        transport = self._transport
        if len(self.vector) != len(transport.router_vector):
            self.vector = [0] * len(transport.router_vector)
        transport.router_vector[0] += 1
        self.vector = _merge_vectors(self.vector, transport.router_vector)
        self.vector[self.index + 1] += 1
        if (
            transport._drop_adv_on_shard == self.index
            and not self._dropped_adv
            and any(command[0] == "adv" for command in message)
        ):
            # Seeded bug: silently lose one broadcast advance command —
            # its reply never arrives, so the router's accounting must
            # flag the action as unaccounted for (RAC002).
            message = [c for c in message if c[0] != "adv"]
            self._dropped_adv = True
        transport.events.append(
            {
                "kind": "send",
                "shard": self.index,
                "seqs": [command[1] for command in message],
                "vector": tuple(self.vector),
            }
        )
        self._arrived.append(self._server.execute(message) if message else [])
        self.sent += 1

    def _deliver(self) -> List[tuple]:
        message = self._arrived.pop(0)
        transport = self._transport
        transport.router_vector = _merge_vectors(transport.router_vector, self.vector)
        transport.router_vector[0] += 1
        transport.events.append(
            {
                "kind": "deliver",
                "shard": self.index,
                "seqs": [reply[0] for reply in message],
                "vector": tuple(transport.router_vector),
            }
        )
        self.released += 1
        return message

    def poll(self) -> List[List[tuple]]:
        out: List[List[tuple]] = []
        transport = self._transport
        tape = transport.tape
        while self._arrived:
            if (
                tape is not None
                and transport.withholds < transport.withhold_budget
                and tape.choose(2, f"release:s{self.index}") != 0
            ):
                transport.withholds += 1
                break
            out.append(self._deliver())
        return out

    def recv(self, timeout: Optional[float] = None) -> List[tuple]:
        from ..engine.transport import TransportError

        if not self._arrived:
            raise TransportError("no reply pending on a synchronous channel")
        return self._deliver()

    def close(self) -> None:
        self._closed = True


# --------------------------------------------------------------------- #
# Scenarios
# --------------------------------------------------------------------- #


@dataclass
class ShardScenario:
    """One bounded sharded-execution scenario the explorer can exhaust.

    ``events`` are ``(source, payload, t)`` triples in global start order
    (the router's ingest contract); ``checkpoint_at`` (an event index)
    drives the quiesced-cut protocol mid-stream and restores into a fresh
    router with ``restore_shards`` workers.
    """

    name: str
    description: str
    make_query: Callable[[], Any]
    events: Sequence[Tuple[str, tuple, Time]]
    shards: int = 2
    pipeline_depth: int = 1
    checkpoint_at: Optional[int] = None
    restore_shards: Optional[int] = None
    #: Preemption bound per schedule (see :class:`RecordingTransport`).
    withhold_budget: int = 2
    seeded_bug: Optional[str] = None
    strategy: str = TRANSPORT
    expect_violation: bool = False

    def build_events(self) -> List[Tuple[str, Any]]:
        from ..temporal import CHRONON, element

        return [
            (source, element(payload, t, t + CHRONON))
            for source, payload, t in self.events
        ]

    def run_check(
        self, budget: Optional[int] = None, metrics: Optional[object] = None
    ) -> ModelCheckResult:
        """Explore this scenario; see :func:`check_shard_scenario`."""
        return check_shard_scenario(self, budget=budget, metrics=metrics)


def _reference_output(scenario: ShardScenario) -> List[tuple]:
    """The single-process run the merged shard output must reproduce."""
    from ..engine.executor import QueryExecutor
    from ..plans.physical import PhysicalBuilder
    from ..streams import CollectorSink, PhysicalStream

    query = scenario.make_query()
    box = PhysicalBuilder().build(query.plan)
    executor = QueryExecutor(
        {name: PhysicalStream(name=name) for name in query.windows},
        dict(query.windows),
        box,
    )
    sink = CollectorSink()
    executor.add_sink(sink)
    for source, item in scenario.build_events():
        executor.push(source, item)
    executor.finish()
    return [(e.payload, e.start, e.end, e.flag) for e in sink.elements]


def _make_sharded(scenario: ShardScenario, shards: int, tape: _ChoiceTape):
    from ..engine.sharded import ShardedExecutor
    from ..streams import CollectorSink

    transport = RecordingTransport(
        tape,
        drop_adv_on_shard=1 if scenario.seeded_bug == "drop-command" else None,
        withhold_budget=scenario.withhold_budget,
    )
    cls = (
        _unordered_pump_class()
        if scenario.seeded_bug == "unordered-pump"
        else ShardedExecutor
    )
    executor = cls(
        scenario.make_query(),
        shards,
        transport=transport,
        pipeline_depth=scenario.pipeline_depth,
    )
    sink = CollectorSink()
    executor.add_sink(sink)
    return executor, sink, transport


def _run_shard_schedule(
    scenario: ShardScenario, tape: _ChoiceTape, seen: set
) -> Any:
    """Drive one reply-release schedule; returns output or ``_PRUNED``.

    Returns ``(output_rows, emission_races, transport)`` on completion.
    """
    executor, sink, transport = _make_sharded(scenario, scenario.shards, tape)
    emission_races: List[str] = []
    expected_seq = [0]

    def monitor(seq: int, kind: str, elements: List[Any]) -> None:
        if seq < expected_seq[0]:
            emission_races.append(
                f"action {seq} emitted after action {expected_seq[0] - 1}"
            )
        expected_seq[0] = max(expected_seq[0], seq + 1)

    executor.on_action_emitted = monitor

    events = scenario.build_events()
    restored = False
    for index, (source, item) in enumerate(events):
        if scenario.checkpoint_at is not None and index == scenario.checkpoint_at:
            state = executor.checkpoint_state()
            executor.close()
            executor, sink2, transport = _make_sharded(
                scenario, scenario.restore_shards or scenario.shards, tape
            )
            executor.on_action_emitted = monitor
            expected_seq[0] = 0
            executor.restore_checkpoint(state)
            sink = _ConcatSink(sink, sink2)
            restored = True
        executor.push(source, item)
        # State pruning, only strictly past the replayed prefix and only
        # before the checkpoint handoff (the restored router's state is a
        # function of the handoff, which the key does not cover).
        if not restored and tape.position > len(tape.prefix):
            key = (
                index,
                tuple(
                    (ch.sent, ch.released, len(ch._arrived))
                    for ch in transport.channels
                ),
                executor._next_seq,
                executor._next_emit,
                tuple(_element_identity(e) for e in sink.elements),
            )
            if key in seen:
                executor.close()
                return _PRUNED
            seen.add(key)
    executor.finish()
    executor.close()
    return (
        [(e.payload, e.start, e.end, e.flag) for e in sink.elements],
        emission_races,
        transport,
    )


class _ConcatSink:
    """Read-only view concatenating two collector sinks' elements."""

    def __init__(self, first: Any, second: Any) -> None:
        self._first = first
        self._second = second

    @property
    def elements(self) -> List[Any]:
        return list(self._first.elements) + list(self._second.elements)


def check_shard_scenario(
    scenario: ShardScenario,
    budget: Optional[int] = None,
    metrics: Optional[object] = None,
) -> ModelCheckResult:
    """Explore every reply-release schedule of ``scenario``.

    Each schedule's merged output is byte-compared against the
    single-process reference; emission-order regressions surface as
    ``RAC001``, lost/unaccounted replies as ``RAC002``.
    """
    from ..engine.transport import TransportError

    if budget is None:
        budget = DEFAULT_BUDGET
    result = ModelCheckResult(
        scenario=scenario.name,
        strategy=scenario.strategy,
        expect_violation=scenario.expect_violation,
    )
    reference = _reference_output(scenario)
    frontier: List[Tuple[int, ...]] = [()]
    seen: set = set()
    while frontier:
        if result.explored + result.pruned >= budget:
            result.complete = False
            break
        prefix = frontier.pop()
        tape = _ChoiceTape(prefix, frontier)
        try:
            outcome = _run_shard_schedule(scenario, tape, seen)
        except TransportError as exc:
            result.explored += 1
            result.violations.append(
                ScheduleViolation(
                    "RAC002",
                    f"lost or unaccounted reply under this schedule: {exc}",
                    tuple(tape.labels),
                )
            )
            continue
        except Exception as exc:
            result.explored += 1
            result.violations.append(
                ScheduleViolation(
                    "RAC001",
                    f"engine error under this schedule: "
                    f"{type(exc).__name__}: {exc}",
                    tuple(tape.labels),
                )
            )
            continue
        if outcome is _PRUNED:
            result.pruned += 1
            continue
        result.explored += 1
        output, emission_races, transport = outcome
        if emission_races:
            result.violations.append(
                ScheduleViolation(
                    "RAC001",
                    f"merge-reordering race: {emission_races[0]} "
                    f"({transport.concurrent_deliveries()} concurrent reply "
                    "deliveries by vector clock)",
                    tuple(tape.labels),
                )
            )
        elif output != reference:
            result.violations.append(
                ScheduleViolation(
                    "RAC001",
                    "merged output diverges from the single-process "
                    "reference run (lost update or merge reorder)",
                    tuple(tape.labels),
                )
            )
    if metrics is not None:
        metrics.record_modelcheck(
            scenario.name, result.explored, result.pruned, len(result.violations)
        )
    return result


# --------------------------------------------------------------------- #
# Seeded bugs
# --------------------------------------------------------------------- #


def _unordered_pump_class():
    """A router whose pump emits completed actions in *arrival* order.

    Exactly the race the real :meth:`ShardedExecutor._pump` prevents:
    under withheld-reply schedules a later action completes first and is
    emitted ahead of an earlier one, breaking the global sequence order —
    the emission monitor must flag it (RAC001).
    """
    import heapq

    from ..engine.sharded import ShardedExecutor

    class _UnorderedPumpShardedExecutor(ShardedExecutor):
        def _pump(self) -> None:
            for seq in list(self._pending):
                record = self._pending[seq]
                if record["need"]:
                    continue
                del self._pending[seq]
                self._next_emit = max(self._next_emit, seq + 1)
                if record["kind"] == "out":
                    if record["parts"] is None:
                        outputs = list(record["payload"])
                    else:
                        outputs = list(
                            heapq.merge(*record["parts"], key=self._merge_key)
                        )
                    if self.on_action_emitted is not None:
                        self.on_action_emitted(seq, "out", outputs)
                    for element in outputs:
                        self.gate.process(element)
                else:
                    self._results[seq] = (
                        record["payload"]
                        if record["parts"] is None
                        else record["parts"]
                    )

    return _UnorderedPumpShardedExecutor


SHARD_SEED_BUGS = ("unordered-pump", "drop-command")


def seed_shard_bug(scenario: ShardScenario, bug: str) -> ShardScenario:
    """Return a copy of ``scenario`` with a deliberate transport bug."""
    if bug not in SHARD_SEED_BUGS:
        raise KeyError(
            f"unknown seeded bug {bug!r}; known: {', '.join(SHARD_SEED_BUGS)}"
        )
    return ShardScenario(
        name=f"{scenario.name}+{bug}",
        description=f"{scenario.description} [seeded bug: {bug}]",
        make_query=scenario.make_query,
        events=scenario.events,
        shards=scenario.shards,
        pipeline_depth=scenario.pipeline_depth,
        checkpoint_at=scenario.checkpoint_at,
        restore_shards=scenario.restore_shards,
        withhold_budget=scenario.withhold_budget,
        seeded_bug=bug,
        strategy=scenario.strategy,
        expect_violation=scenario.expect_violation,
    )


# --------------------------------------------------------------------- #
# Preset scenarios
# --------------------------------------------------------------------- #


def _distinct_query():
    from ..plans.logical import DistinctNode, Query, Source

    return Query(DistinctNode(Source("A", ["k"])), {"A": 8})


def _join_query():
    from ..plans.expressions import Comparison, Field
    from ..plans.logical import JoinNode, Query, Source

    return Query(
        JoinNode(
            Source("A", ["k", "v"]),
            Source("B", ["k"]),
            Comparison("=", Field("A.k"), Field("B.k")),
        ),
        {"A": 12, "B": 12},
    )


def _shard_merge() -> ShardScenario:
    return ShardScenario(
        name="shard-merge",
        description=(
            "2-shard duplicate elimination (strict regime): equalising "
            "broadcasts finalise output on both shards and the router "
            "merges the parts — checked under every reply arrival order"
        ),
        make_query=_distinct_query,
        events=(
            ("A", (0,), 0),
            ("A", (1,), 2),
            ("A", (0,), 4),
            ("A", (1,), 5),
            ("A", (2,), 7),
            ("A", (0,), 9),
        ),
        shards=2,
        pipeline_depth=1,
    )


def _shard_checkpoint() -> ShardScenario:
    return ShardScenario(
        name="shard-checkpoint",
        description=(
            "2-shard equi-join with a mid-stream quiesced-cut checkpoint "
            "restored under 3 shards: the barrier protocol checked under "
            "every withheld-reply schedule"
        ),
        make_query=_join_query,
        events=(
            ("A", (0, 1), 0),
            ("B", (0,), 1),
            ("A", (1, 2), 2),
            ("B", (1,), 3),
            ("A", (0, 3), 4),
            ("B", (0,), 5),
        ),
        shards=2,
        pipeline_depth=1,
        checkpoint_at=3,
        restore_shards=3,
    )


SHARD_PRESETS: Dict[str, Callable[[], ShardScenario]] = {
    "shard-merge": _shard_merge,
    "shard-checkpoint": _shard_checkpoint,
}


def build_shard_scenario(name: str) -> ShardScenario:
    """Instantiate a shard-scenario preset by name."""
    try:
        return SHARD_PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; presets: "
            f"{', '.join(sorted(SHARD_PRESETS))}"
        ) from None
