"""Static analysis for snapshot-equivalence and migration safety.

Three tools, one package:

* :mod:`~repro.analysis.plan_verifier` — walks logical plans and physical
  boxes, re-validates schemas, classifies every operator (snapshot-
  reducible / start-preserving / stateful-non-join), issues per-strategy
  migration-safety verdicts (PT / RP / GenMig), and derives the static
  ``T_split`` reachability bound from the window sizes;
* :mod:`~repro.analysis.sanitizer` — an opt-in runtime checker of the
  physical-stream invariants (interval well-formedness, watermark
  monotonicity, emission promises, batch run-purity, state accounting),
  hooked into the engine at zero cost when off;
* :mod:`~repro.analysis.lint` — AST-based project-specific lint rules for
  the engine code itself (no wall clocks, purge via sweep-area APIs,
  honest batch overrides), run locally and in CI;
* :mod:`~repro.analysis.modelcheck` / :mod:`~repro.analysis.races` — a
  small-scope exhaustive schedule explorer for the migration protocols
  (checked against a relational oracle) and a happens-before race
  detector for the transport / sharded layer.

Command line::

    python -m repro.analysis "SELECT ..." --source bids=item,price
    python -m repro.analysis modelcheck --all
    python -m repro.analysis.lint [paths]
"""

from .plan_verifier import (
    Diagnostic,
    MigrationVerdict,
    OperatorClassification,
    PlanVerdict,
    SplitBound,
    StrategyVerdict,
    classify_logical,
    classify_operator,
    figure2_plans,
    verify_box,
    verify_migration,
    verify_plan,
    verify_query,
)
from .modelcheck import (
    PRESETS,
    ModelCheckResult,
    RelationalOracle,
    Scenario,
    ScheduleViolation,
    build_scenario,
    check_scenario,
    seed_bug,
)
from .races import (
    SHARD_PRESETS,
    RecordingTransport,
    ShardScenario,
    build_shard_scenario,
    check_shard_scenario,
    seed_shard_bug,
)
from .sanitizer import (
    SanitizerViolation,
    StreamSanitizer,
    ensure_installed,
    install,
    sanitized,
    uninstall,
)
from .sharding import ShardingPlan, classify_sharding

__all__ = [
    "Diagnostic",
    "MigrationVerdict",
    "ModelCheckResult",
    "OperatorClassification",
    "PRESETS",
    "PlanVerdict",
    "RecordingTransport",
    "RelationalOracle",
    "SHARD_PRESETS",
    "SanitizerViolation",
    "Scenario",
    "ScheduleViolation",
    "ShardScenario",
    "ShardingPlan",
    "SplitBound",
    "StrategyVerdict",
    "StreamSanitizer",
    "build_scenario",
    "build_shard_scenario",
    "check_scenario",
    "check_shard_scenario",
    "classify_logical",
    "classify_sharding",
    "classify_operator",
    "ensure_installed",
    "figure2_plans",
    "install",
    "sanitized",
    "seed_bug",
    "seed_shard_bug",
    "uninstall",
    "verify_box",
    "verify_migration",
    "verify_plan",
    "verify_query",
]
