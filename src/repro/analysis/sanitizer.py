"""The stream-invariant sanitizer: opt-in runtime checking of the
physical-stream contract.

The correctness of every operator — and of every migration strategy — rests
on a handful of *physical stream invariants* (Section 2.2 of the paper):
validity intervals are half-open and non-empty (``t_S < t_E``); start
timestamps are non-decreasing per stream; watermarks only move forward; an
operator never emits below the progress promise it has already made
downstream; batches are faithful run encodings of the element protocol; and
the incremental state accounting agrees with a from-scratch recount.  The
engine checks the cheap subset of these unconditionally (out-of-order input
raises).  The sanitizer checks *all* of them, at every hook point, when
explicitly enabled:

* ``StreamSanitizer().install()`` / :func:`sanitized` — process-wide;
* ``QueryExecutor(..., sanitize=True)`` — per executor construction;
* ``REPRO_SANITIZE=1`` in the environment — e.g. for a whole test run.

When not installed the hooks are a single ``is None`` test on a module
global (:data:`repro.operators.base.SANITIZER` — the same pattern as
``sweep.DEBUG``), so production runs pay nothing.

Violations raise :class:`SanitizerViolation` (an ``AssertionError``
subclass, so plain ``pytest`` reporting and ``-O`` stripping semantics
behave as expected) carrying a stable machine-readable ``code``:

==========  ===========================================================
``SAN001``  inverted or empty validity interval (``t_S >= t_E``)
``SAN002``  emission below the operator's promised watermark
``SAN003``  non-monotone emission order from one operator
``SAN004``  batch elements not in start-timestamp order
``SAN005``  batch trailing watermark below its last element's start
``SAN006``  batch flagged ``uniform_start`` but starts differ
``SAN007``  incremental state count disagrees with a full recount
``SAN008``  source fed an element below its own watermark
``SAN009``  output-gate order violation (strict mode only)
==========  ===========================================================

The one *tolerated* anomaly is SAN009: the Parallel Track baseline's
end-of-migration buffer flush delivers results whose start timestamps
interleave with already-delivered ones — by design, and measured by the
gate's ``order_violations`` counter.  The sanitizer records these but only
raises when constructed with ``strict_gate=True``.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Tuple

from ..operators import base as _base
from ..temporal.batch import Batch
from ..temporal.element import StreamElement
from ..temporal.time import Time


class SanitizerViolation(AssertionError):
    """A broken stream invariant, caught at a sanitizer hook point.

    Attributes:
        code: the stable violation class identifier (``SAN001``...).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class StreamSanitizer:
    """Checks physical-stream invariants at the engine's hook points.

    Args:
        strict_gate: raise on output-gate ordering violations instead of
            recording them (breaks the Parallel Track baseline by design —
            its buffer flush is the anomaly the gate counter measures).
        check_state_counts: verify the incremental state accounting
            against a full recount on every watermark advance.  O(state)
            per advance; disable for long sanitized runs.
    """

    def __init__(
        self, strict_gate: bool = False, check_state_counts: bool = True
    ) -> None:
        self.strict_gate = strict_gate
        self.check_state_counts = check_state_counts
        #: Recorded (gate name, element) pairs of tolerated SAN009 events.
        self.gate_violations: List[Tuple[str, StreamElement]] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def install(self) -> "StreamSanitizer":
        """Make this sanitizer the process-wide active one."""
        _base.SANITIZER = self
        return self

    @staticmethod
    def uninstall() -> None:
        """Deactivate any installed sanitizer (hooks back to zero cost)."""
        _base.SANITIZER = None

    # ------------------------------------------------------------------ #
    # Shared checks
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_interval(element: StreamElement, where: str) -> None:
        interval = element.interval
        if not interval.start < interval.end:
            raise SanitizerViolation(
                "SAN001",
                f"{where}: inverted validity interval "
                f"[{interval.start}, {interval.end}) — t_S must be < t_E; "
                "an element must be valid for at least one instant",
            )

    # ------------------------------------------------------------------ #
    # Hook points (called from repro.operators.base and friends)
    # ------------------------------------------------------------------ #

    def on_input(self, op: object, element: StreamElement, port: int) -> None:
        """An operator is about to consume ``element`` on ``port``."""
        self._check_interval(element, f"{getattr(op, 'name', op)} input port {port}")

    def on_emit(self, op: object, element: StreamElement) -> None:
        """An operator is about to forward ``element`` downstream."""
        name = getattr(op, "name", str(op))
        self._check_interval(element, f"{name} output")
        if getattr(op, "_draining", False):
            # flush(): the end-of-stream drain legitimately releases staged
            # results below the promise (there is no more input to order
            # against).  Coalesce's table flush rides the same path.
            return
        promised = getattr(op, "_emitted_watermark", None)
        if promised is not None and element.start < promised:
            raise SanitizerViolation(
                "SAN002",
                f"{name}: emitted element starting at {element.start} below "
                f"its own promised watermark {promised} — downstream "
                "operators have already been told no such element can "
                "appear, and may have purged the state it would join with",
            )
        last = getattr(op, "_san_last_emit", None)
        if last is not None and element.start < last:
            raise SanitizerViolation(
                "SAN003",
                f"{name}: emitted element starting at {element.start} after "
                f"one starting at {last} — output must be a physical stream "
                "(non-decreasing start timestamps); stage results instead "
                "of emitting them directly",
            )
        op._san_last_emit = element.start  # type: ignore[attr-defined]

    def on_emit_batch(self, op: object, batch: Batch) -> None:
        """An operator is about to forward a whole batch downstream."""
        self.on_batch(op, batch, port=-1)
        for element in batch.elements:
            self.on_emit(op, element)

    def on_batch(self, op: object, batch: Batch, port: int) -> None:
        """An operator is about to consume (or emit, port=-1) a batch."""
        name = getattr(op, "name", str(op))
        where = f"{name} {'output' if port < 0 else f'input port {port}'}"
        elements = batch.elements
        if not elements:
            raise SanitizerViolation("SAN004", f"{where}: empty batch")
        last: Optional[Time] = None
        for element in elements:
            self._check_interval(element, where)
            if last is not None and element.start < last:
                raise SanitizerViolation(
                    "SAN004",
                    f"{where}: batch elements out of order — start "
                    f"{element.start} after {last}; a batch must encode an "
                    "ordered run of the element protocol",
                )
            last = element.start
        if batch.watermark < elements[-1].start:
            raise SanitizerViolation(
                "SAN005",
                f"{where}: batch trailing watermark {batch.watermark} below "
                f"its last element's start {elements[-1].start} — the "
                "watermark would retract a promise the run itself implies",
            )
        if batch.uniform_start and elements[0].start != elements[-1].start:
            raise SanitizerViolation(
                "SAN006",
                f"{where}: batch flagged uniform_start but spans starts "
                f"{elements[0].start}..{elements[-1].start} — operators "
                "skip per-element watermark work on the strength of this "
                "flag",
            )

    def on_advance(self, op: object) -> None:
        """An operator finished a watermark advance (purge + release)."""
        if not self.check_state_counts:
            return
        counter = getattr(op, "_state_value_count", None)
        if counter is None:
            return
        fast = op._staged_values + counter()  # type: ignore[attr-defined]
        slow = op.state_value_count_slow()  # type: ignore[attr-defined]
        if fast != slow:
            raise SanitizerViolation(
                "SAN007",
                f"{getattr(op, 'name', op)}: incremental state count {fast} "
                f"disagrees with full recount {slow} — a sweep-area "
                "insert/purge path failed to maintain its running counter "
                "(memory metrics and migration-progress checks are built "
                "on it)",
            )

    def on_source(self, name: str, element: StreamElement, watermark: Time) -> None:
        """The executor is about to ingest ``element`` for source ``name``."""
        self._check_interval(element, f"source {name!r}")
        if element.start < watermark:
            raise SanitizerViolation(
                "SAN008",
                f"source {name!r}: element starting at {element.start} "
                f"behind the source watermark {watermark} — per-source "
                "start-timestamp order is the contract every downstream "
                "watermark rests on",
            )

    def on_gate(self, gate: object, element: StreamElement, violated: bool) -> None:
        """The output gate is about to deliver ``element``."""
        self._check_interval(element, f"gate {getattr(gate, 'name', gate)}")
        if violated:
            self.gate_violations.append((getattr(gate, "name", "gate"), element))
            if self.strict_gate:
                raise SanitizerViolation(
                    "SAN009",
                    f"gate {getattr(gate, 'name', gate)}: result starting at "
                    f"{element.start} delivered after a later one — ordering "
                    "anomaly at the query output (expected only from the "
                    "Parallel Track baseline's end-of-migration flush)",
                )


def install(sanitizer: Optional[StreamSanitizer] = None) -> StreamSanitizer:
    """Install (and return) a process-wide sanitizer."""
    return (sanitizer or StreamSanitizer()).install()


def uninstall() -> None:
    """Deactivate the process-wide sanitizer."""
    StreamSanitizer.uninstall()


def ensure_installed() -> StreamSanitizer:
    """Install a default sanitizer unless one is already active."""
    current = _base.SANITIZER
    if current is not None:
        return current
    return install()


@contextlib.contextmanager
def sanitized(
    sanitizer: Optional[StreamSanitizer] = None,
) -> Iterator[StreamSanitizer]:
    """Run a block with a sanitizer installed, restoring the previous one."""
    previous = _base.SANITIZER
    active = install(sanitizer)
    try:
        yield active
    finally:
        _base.SANITIZER = previous
