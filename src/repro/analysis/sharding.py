"""Shardability classification: can a plan run hash-partitioned, and how.

``ShardedExecutor`` (``engine/sharded.py``) runs N shared-nothing copies of
a plan and routes each source row to one shard by hashing a *routing
column*.  That is only byte-identical to the single-process run when every
keyed stateful operator sees all rows it would have matched — this module
decides, statically, whether a plan has that property and derives the
routing/state-key tables the router and the checkpoint re-partitioner use.

The analysis is a bottom-up *column provenance* pass — every output
position of every node is mapped to the set of ``(source, raw_index)``
origins it can carry — combined with a union-find over those origins in
which each equi-join condition merges its two key columns' origin sets
into one *routing class*.  A class induces a routing column per source;
co-location then follows from value equality:

* a **hash/equi join** is correct when both inputs route by its key class
  (rows that could match carry equal key values, hence hash alike);
* a **grouped aggregate** at the root is correct when some group column's
  origins lie inside the routing class covering *all* sources below it —
  equal group keys then imply equal class values, so a group never spans
  shards;
* **duplicate elimination / difference** at the root are correct when the
  whole payload determines the class value (some payload position carries
  it on every path), so equal payloads land on one shard.

Diagnostics follow the verifier's conventions (`plan_verifier.Diagnostic`):

* **SHD001** — an operator is *global-only*: no key exists that partitions
  its state (non-equi or cross joins, ungrouped aggregation).
* **SHD002** — the operators are keyed but the plan cannot be routed:
  a watermark-driven emitter (aggregate / distinct / difference) sits
  below the root, a key is not traceable to source columns, two classes
  claim different routing columns of one source, or no payload position
  covers every source.

``mode`` distinguishes plans whose output depends only on the input
*elements* ("eager": joins, unions, stateless chains — results release in
the action that produced them) from plans whose output also depends on
the exact *watermark sequence* ("strict": a grouped aggregate, distinct
or difference root, which finalises per watermark movement).  Strict
plans need the router to broadcast every new start timestamp to all
shards before delivering the element, so each shard chops time into the
same segments the single-process run would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..plans.expressions import Field as FieldExpr
from ..plans.logical import (
    AggregateNode,
    DifferenceNode,
    DistinctNode,
    JoinNode,
    LogicalPlan,
    ProjectNode,
    Query,
    SelectNode,
    Source,
    UnionNode,
)
from .plan_verifier import Diagnostic

#: One provenance atom: ``(source_name, raw_column_index)``.
Origin = Tuple[str, int]
#: Per output position, the origins it can carry (empty = computed value).
Origins = List[FrozenSet[Origin]]


@dataclass(frozen=True)
class ShardingPlan:
    """The result of :func:`classify_sharding`.

    ``routing`` maps each source name to the raw column index whose value
    hashes to the owning shard.  ``state_keys`` maps a *physical operator
    name* (as ``PhysicalBuilder`` will name it) to one key index per input
    port — the position, within a drained state row of that port, that
    recovers the routing value; ``None`` for a port whose state needs no
    re-partitioning.  ``root_key`` is the analogous position for staged
    output rows of the root operator (only duplicate elimination can hold
    deferred staged output across a quiesced cut).
    """

    shardable: bool
    mode: str  # "eager" | "strict"
    routing: Dict[str, int] = field(default_factory=dict)
    state_keys: Dict[str, Tuple[Optional[int], ...]] = field(default_factory=dict)
    root_key: Optional[int] = None
    diagnostics: Tuple[Diagnostic, ...] = ()

    def explain(self) -> str:
        """Human-readable summary of why the plan is (not) shardable."""
        if self.shardable:
            keys = ", ".join(f"{s}[{i}]" for s, i in sorted(self.routing.items()))
            return f"shardable ({self.mode}); routing by {keys or 'n/a'}"
        return "; ".join(f"{d.code}: {d.message}" for d in self.diagnostics)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Origin, Origin] = {}

    def find(self, item: Origin) -> Origin:
        parent = self._parent.setdefault(item, item)
        while parent != item:
            self._parent[item] = parent = self._parent.setdefault(parent, parent)
            item, parent = parent, self._parent[parent]
        return item

    def union(self, a: Origin, b: Origin) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def members(self) -> Dict[Origin, List[Origin]]:
        groups: Dict[Origin, List[Origin]] = {}
        for item in list(self._parent):
            groups.setdefault(self.find(item), []).append(item)
        return groups


class _Analysis:
    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []
        self.classes = _UnionFind()
        self.constrained: List[Origin] = []
        #: (physical join names, left child key position, right child key position)
        self.joins: List[Tuple[Tuple[str, ...], int, int, Origin]] = []

    def error(self, code: str, message: str, operator: Optional[str] = None) -> None:
        self.diagnostics.append(Diagnostic("error", code, message, operator))

    # ---------------------------------------------------------------- #
    # Provenance walk
    # ---------------------------------------------------------------- #

    def walk(self, node: LogicalPlan) -> Origins:
        """Provenance of every node strictly *below* the plan root.

        Watermark-driven emitters reached here are below the root by
        construction (``classify_sharding`` peels the root emitter before
        walking), which is never shardable: their release timing follows
        the watermark sequence, and only the root merge stage can
        reproduce that across shards.
        """
        if isinstance(node, Source):
            return [frozenset({(node.name, i)}) for i in range(len(node.schema))]
        if isinstance(node, SelectNode):
            return self.walk(node.child)
        if isinstance(node, ProjectNode):
            child = self.walk(node.child)
            schema = list(node.child.schema)
            out: Origins = []
            for expression, _name in node.outputs:
                if isinstance(expression, FieldExpr):
                    out.append(child[schema.index(expression.name)])
                else:
                    out.append(frozenset())
            return out
        if isinstance(node, UnionNode):
            left = self.walk(node.left)
            right = self.walk(node.right)
            return [l | r for l, r in zip(left, right)]
        if isinstance(node, JoinNode):
            return self._walk_join(node)
        if isinstance(node, (AggregateNode, DistinctNode, DifferenceNode)):
            label = {
                AggregateNode: "aggregate",
                DistinctNode: "distinct",
                DifferenceNode: "difference",
            }[type(node)]
            self.error(
                "SHD002",
                f"{label} below the plan root: its output follows the "
                "watermark sequence, which only the root merge stage can "
                "reproduce across shards",
                label,
            )
            for child in node.children:
                self.walk(child)
            return [frozenset()] * len(node.schema)
        raise TypeError(f"cannot analyse logical node {type(node).__name__}")

    def _walk_join(self, node: JoinNode) -> Origins:
        left = self.walk(node.left)
        right = self.walk(node.right)
        equi = node.equi_columns()
        if equi is None:
            label = "cross-join" if node.condition is None else f"nl-join[{node.condition!r}]"
            self.error(
                "SHD001",
                "only equi-joins are key-shardable; a "
                + ("cross product" if node.condition is None else "non-equi predicate")
                + " can match rows with unequal keys across shards",
                label,
            )
            return left + right
        left_column, right_column = equi
        lpos = node.left.schema.index(left_column)
        rpos = node.right.schema.index(right_column)
        key_origins = left[lpos] | right[rpos]
        if not left[lpos] or not right[rpos]:
            self.error(
                "SHD002",
                f"join key {left_column}={right_column} is not traceable to "
                "source columns (computed key): rows cannot be routed",
                f"hash-join[{left_column}={right_column}]",
            )
            return left + right
        anchor = next(iter(key_origins))
        for origin in key_origins:
            self.classes.union(anchor, origin)
            self.constrained.append(origin)
        names = (
            f"hash-join[{left_column}={right_column}]",
            f"nl-join[{node.condition!r}]",
        )
        self.joins.append((names, lpos, rpos, anchor))
        return left + right


def classify_sharding(query: Union[Query, LogicalPlan]) -> ShardingPlan:
    """Classify ``query`` as key-shardable or global-only.

    Returns a :class:`ShardingPlan`; ``shardable`` is ``False`` when any
    SHD001/SHD002 diagnostic fired, with the reasons in ``diagnostics``.
    """
    plan = query.plan if isinstance(query, Query) else query
    analysis = _Analysis()
    # Peel the root: a watermark-driven emitter is permitted there (and
    # only there); the provenance walk covers everything below it.
    if isinstance(plan, AggregateNode):
        if not plan.group_by:
            analysis.error(
                "SHD001",
                "ungrouped aggregation folds the whole stream: global-only, "
                "no key partitions its state",
                "aggregate",
            )
        origins = analysis.walk(plan.child)
    elif isinstance(plan, DistinctNode):
        origins = analysis.walk(plan.child)
    elif isinstance(plan, DifferenceNode):
        left = analysis.walk(plan.left)
        right = analysis.walk(plan.right)
        origins = [l | r for l, r in zip(left, right)]
    else:
        origins = analysis.walk(plan)
    sources = list(dict.fromkeys(plan.sources()))

    # --- resolve per-source routing columns from the join classes -------- #
    routing: Dict[str, int] = {}
    class_of: Dict[str, Origin] = {}
    for origin in analysis.constrained:
        source_name, index = origin
        root = analysis.classes.find(origin)
        if source_name in routing:
            if routing[source_name] != index or class_of[source_name] != root:
                analysis.error(
                    "SHD002",
                    f"source {source_name!r} would need to route by both "
                    f"column {routing[source_name]} and column {index}: "
                    "conflicting shard keys",
                )
        else:
            routing[source_name] = index
            class_of[source_name] = root

    # --- joins must agree within one connected class each ---------------- #
    state_keys: Dict[str, Tuple[Optional[int], ...]] = {}
    for names, lpos, rpos, _anchor in analysis.joins:
        for name in names:
            state_keys[name] = (lpos, rpos)

    # --- keyed roots: find the key position and finish the routing ------- #
    root_key: Optional[int] = None
    mode = "eager"
    if isinstance(plan, AggregateNode) and plan.group_by:
        mode = "strict"
        child_schema = list(plan.child.schema)
        position = _pick_key_position(
            analysis,
            [child_schema.index(column) for column in plan.group_by],
            origins,
            sources,
            routing,
            class_of,
        )
        if position is None:
            analysis.error(
                "SHD002",
                "no GROUP BY column lies in the routing class covering every "
                "source: a group could span shards and finalise twice",
                "aggregate",
            )
        else:
            name = f"aggregate[{','.join(s.output_name() for s in plan.aggregates)}]"
            state_keys[name] = (position,)
            root_key = plan.group_by.index(plan.child.schema[position])
    elif isinstance(plan, (DistinctNode, DifferenceNode)):
        mode = "strict"
        width = len(origins)
        position = _pick_key_position(
            analysis, list(range(width)), origins, sources, routing, class_of
        )
        if position is None:
            analysis.error(
                "SHD002",
                "no payload position carries the routing value on every path: "
                "equal payloads could land on different shards",
                "distinct" if isinstance(plan, DistinctNode) else "difference",
            )
        elif isinstance(plan, DistinctNode):
            state_keys["distinct"] = (position,)
            root_key = position
        else:
            state_keys["difference"] = (position, position)
            root_key = position

    if any(d.severity == "error" for d in analysis.diagnostics):
        return ShardingPlan(
            shardable=False,
            mode=mode,
            diagnostics=tuple(analysis.diagnostics),
        )

    for source_name in sources:
        routing.setdefault(source_name, 0)
    return ShardingPlan(
        shardable=True,
        mode=mode,
        routing=routing,
        state_keys=state_keys,
        root_key=root_key,
        diagnostics=tuple(analysis.diagnostics),
    )


def _pick_key_position(
    analysis: _Analysis,
    candidates: Sequence[int],
    origins: Origins,
    sources: Sequence[str],
    routing: Dict[str, int],
    class_of: Dict[str, Origin],
) -> Optional[int]:
    """Find a row position whose value determines the shard of every row.

    With join classes present, the position must carry a class member on
    some path and every source must already route within one single class
    (equal values at the position then imply equal routing values).
    Without joins, the position itself becomes the routing column: it must
    carry exactly one origin per source, which the routing table adopts.
    """
    if analysis.constrained:
        class_roots = {analysis.classes.find(anchor) for *_ignored, anchor in analysis.joins}
        if len(class_roots) != 1 or set(routing) != set(sources):
            return None
        for position in candidates:
            members = origins[position]
            if members and all(
                routing.get(source_name) == index for source_name, index in members
            ):
                return position
        return None
    for position in candidates:
        members = origins[position]
        per_source: Dict[str, int] = {}
        ambiguous = False
        for source_name, index in members:
            if per_source.setdefault(source_name, index) != index:
                ambiguous = True
        if ambiguous or set(per_source) != set(sources):
            continue
        routing.update(per_source)
        return position
    return None
