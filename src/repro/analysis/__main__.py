"""``python -m repro.analysis``: verify a CQL query or plan file.

Compiles the query against a catalog assembled from ``--source`` options,
runs the plan verifier, prints the diagnostic report (or JSON with
``--json``), optionally writes an annotated DOT rendering, and exits
non-zero when the plan has errors — or when a strategy named with
``--strategy`` is unsafe for it.

Examples::

    python -m repro.analysis \
        "SELECT DISTINCT a.x FROM a [RANGE 10], b [RANGE 20] WHERE a.x = b.y" \
        --source a=x --source b=y

    python -m repro.analysis query.cql --source bids=item,price \
        --strategy parallel-track --json

The ``modelcheck`` subcommand instead runs the bounded migration /
transport model checker (:mod:`repro.analysis.modelcheck`)::

    python -m repro.analysis modelcheck --all
    python -m repro.analysis modelcheck --preset pt-figure2 --budget 2000
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from .plan_verifier import ERROR, STRATEGIES, PlanVerdict, verify_query

USAGE_ERROR = 2


def _parse_sources(specs: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
    catalog: Dict[str, Tuple[str, ...]] = {}
    for spec in specs:
        name, sep, columns = spec.partition("=")
        if not sep or not name or not columns:
            raise ValueError(
                f"invalid --source {spec!r}: expected NAME=COL1,COL2,..."
            )
        catalog[name] = tuple(c.strip() for c in columns.split(",") if c.strip())
        if not catalog[name]:
            raise ValueError(f"invalid --source {spec!r}: no columns given")
    return catalog


def _load_query_text(argument: str) -> str:
    path = Path(argument)
    if path.suffix in (".cql", ".sql", ".txt") or path.is_file():
        return path.read_text(encoding="utf-8")
    return argument


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "modelcheck":
        from .modelcheck import run_cli

        return run_cli(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify a CQL query for migration safety.",
    )
    parser.add_argument(
        "query", help="CQL query text, or a path to a file containing it"
    )
    parser.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="NAME=COL1,COL2",
        help="declare a source stream's schema (repeatable)",
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        help="additionally fail (exit 1) when this strategy is unsafe",
    )
    parser.add_argument(
        "--interval-bound",
        type=int,
        default=1,
        help="bound b on raw input interval lengths (default 1)",
    )
    parser.add_argument(
        "--dot", metavar="PATH", help="write an annotated DOT rendering"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the verdict as JSON"
    )
    try:
        args = parser.parse_args(arguments)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return int(exc.code or 0)

    from ..cql import CQLSyntaxError, Catalog, TranslationError, compile_query

    try:
        catalog = Catalog(_parse_sources(args.source))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_ERROR
    try:
        text = _load_query_text(args.query)
    except OSError as exc:
        print(f"error: cannot read {args.query!r}: {exc}", file=sys.stderr)
        return USAGE_ERROR
    try:
        query = compile_query(text, catalog)
    except (CQLSyntaxError, TranslationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_ERROR

    verdict: PlanVerdict = verify_query(query, interval_bound=args.interval_bound)

    if args.dot:
        from ..plans.dot import plan_to_dot

        Path(args.dot).write_text(plan_to_dot(query.plan), encoding="utf-8")

    if args.json:
        print(json.dumps(verdict.to_dict(), indent=2, default=str))
    else:
        print(verdict.report())

    failed = any(d.severity == ERROR for d in verdict.diagnostics)
    if args.strategy is not None and not verdict.strategies[args.strategy].safe:
        failed = True
        if not args.json:
            print(
                f"\nFAIL: strategy {args.strategy!r} is unsafe for this plan",
                file=sys.stderr,
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
