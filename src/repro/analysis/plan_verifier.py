"""The plan verifier: static analysis for snapshot-equivalence and
migration safety.

The paper's correctness results are *structural*: Parallel Track is sound
only for join-only boxes (Section 3, Note 1), the reference-point
optimization only for start-preserving plans (Section 4.5), GenMig with
coalesce for any plan built from snapshot-reducible operators (Theorem 1),
and ``T_split`` must exceed every time instant reachable inside the old
box (Lemma 1, Remark 3).  This module turns those facts into checkable
verdicts *before* a migration runs against live traffic:

* **schema propagation** over logical plans — every attribute reference is
  re-validated bottom-up, independently of the constructor checks, so a
  broken transformation rule or a hand-built subclass is caught as a
  diagnostic rather than a corrupt result;
* **per-operator classification** — snapshot-reducible / start-preserving
  / stateful-non-join, for logical nodes and physical operators alike
  (subsuming :func:`repro.core.strategy.classify_box`);
* **migration-safety verdicts** per strategy (PT / RP / GenMig), each with
  a machine-readable diagnostic list.  The paper's Figure 2
  counter-example — duplicate elimination pushed below a join, then
  migrated with Parallel Track — surfaces here as a ``PT001`` lint
  failure naming the offending operator;
* a **static ``T_split`` bound**: the latest time instant reachable
  inside the old box, derived from the window sizes along each source
  path (``max(t_Si) + w + b``), against which a proposed split time can
  be checked.

Verdicts are plain data (:class:`PlanVerdict`), consumed by
:func:`repro.core.strategy.select_strategy`, the autonomic controller,
the re-optimizer's candidate gate, the DOT renderer and the
``python -m repro.analysis`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from ..plans.expressions import Schema
from ..plans.logical import (
    AggregateNode,
    DifferenceNode,
    DistinctNode,
    JoinNode,
    LogicalPlan,
    ProjectNode,
    Query,
    SelectNode,
    Source,
    UnionNode,
)
from ..temporal.time import EPSILON, MAX_TIME, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.box import Box

# --------------------------------------------------------------------- #
# Diagnostics
# --------------------------------------------------------------------- #

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Canonical strategy names, matching ``select_strategy`` preferences.
PARALLEL_TRACK = "parallel-track"
REFERENCE_POINT = "reference-point"
GENMIG = "genmig"
FLUID = "fluid"
STRATEGIES = (PARALLEL_TRACK, REFERENCE_POINT, GENMIG, FLUID)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the verifier: severity, stable code, plain message.

    ``operator`` names the offending operator or plan node when the
    finding is local to one; codes are stable identifiers (``PT001``,
    ``SCH002``, ``TS001``, ...) intended for machine consumption.
    """

    severity: str
    code: str
    message: str
    operator: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.operator}]" if self.operator else ""
        return f"{self.code} {self.severity}{where}: {self.message}"


# --------------------------------------------------------------------- #
# Operator classification
# --------------------------------------------------------------------- #

#: Classification kinds and their trait rows:
#: (start_preserving, stateful, pt_compatible, counts_for_join_only).
_KIND_TRAITS: Dict[str, Tuple[bool, bool, bool, bool]] = {
    # Sources and sigma/pi: no state, validity passes through.
    "source": (True, False, True, True),
    "stateless": (True, False, True, True),
    # Joins: stateful, but every result starts at a contributing input's
    # start, and PT's lineage flags partition their results correctly.
    "join": (True, True, True, True),
    # The order-restoring union: start-preserving and PT-flag-compatible,
    # but outside the join-only shapes the PT baseline is benchmarked on.
    "order-restoring": (True, True, True, False),
    # Duplicate elimination, aggregation, difference: results may start
    # mid-interval, and old/new lineage cannot partition them.
    "general": (False, True, False, False),
}


@dataclass(frozen=True)
class OperatorClassification:
    """The migration-relevant traits of one operator or plan node."""

    label: str
    kind: str
    snapshot_reducible: bool
    start_preserving: bool
    stateful: bool
    pt_compatible: bool
    #: Whether the operator's state is partitioned by a key function —
    #: the precondition for fluid migration's per-key-range drain.
    keyed: bool = False

    @classmethod
    def of_kind(
        cls,
        label: str,
        kind: str,
        snapshot_reducible: bool = True,
        keyed: bool = False,
    ) -> "OperatorClassification":
        start_preserving, stateful, pt_compatible, _ = _KIND_TRAITS[kind]
        return cls(
            label=label,
            kind=kind,
            snapshot_reducible=snapshot_reducible,
            start_preserving=start_preserving,
            stateful=stateful,
            pt_compatible=pt_compatible,
            keyed=keyed,
        )

    @property
    def description(self) -> str:
        """Human-readable trait summary (used by the DOT annotations)."""
        traits = []
        traits.append(
            "snapshot-reducible" if self.snapshot_reducible else "NOT snapshot-reducible"
        )
        traits.append(
            "start-preserving" if self.start_preserving else "stateful-non-join"
        )
        if self.stateful and self.kind == "join":
            traits.append("join")
        return ", ".join(traits)


def classify_logical(node: LogicalPlan) -> OperatorClassification:
    """Classify one logical plan node (children are not inspected)."""
    label = _node_label(node)
    if isinstance(node, Source):
        return OperatorClassification.of_kind(label, "source")
    if isinstance(node, (SelectNode, ProjectNode)):
        return OperatorClassification.of_kind(label, "stateless")
    if isinstance(node, JoinNode):
        return OperatorClassification.of_kind(
            label, "join", keyed=node.equi_columns() is not None
        )
    if isinstance(node, UnionNode):
        return OperatorClassification.of_kind(label, "order-restoring")
    if isinstance(node, (DistinctNode, AggregateNode, DifferenceNode)):
        return OperatorClassification.of_kind(label, "general")
    # Unknown node types are treated as general (always sound for GenMig
    # as long as they are snapshot-reducible, which the verdict flags).
    return OperatorClassification.of_kind(label, "general")


def _columnar_state_diagnostic(op: object, label: str) -> Optional[Diagnostic]:
    """CLS003: columnar state must stay drainable and seedable.

    An operator advertising ``columnar_state`` keeps its state in
    struct-of-arrays form; GenMig's drain/seed protocol reaches it only
    through ``state_of_port`` / ``seed_state``, which must materialise
    the columns into elements and back.  Missing either hook means a
    mid-flight migration cannot move the operator's state.
    """
    if not getattr(op, "columnar_state", False):
        return None
    if callable(getattr(op, "state_of_port", None)) and callable(
        getattr(op, "seed_state", None)
    ):
        return None
    return Diagnostic(
        WARNING,
        "CLS003",
        "operator holds columnar state but lacks state_of_port/seed_state: "
        "GenMig cannot drain or seed its struct-of-arrays state mid-flight",
        operator=label,
    )


def _checkpoint_state_diagnostic(
    op: object, classification: OperatorClassification
) -> Optional[Diagnostic]:
    """CKP001: stateful operators must drain and seed symmetrically.

    The crash-recovery subsystem serializes operator state through the
    same ``state_of_port`` / ``seed_state`` pair GenMig's Moving States
    uses; a stateful operator missing either hook makes every plan that
    contains it non-checkpointable (the CheckpointManager refuses at
    runtime with a :class:`~repro.recovery.errors.RecoveryError`).  This
    generalizes CLS003 from columnar state to all stateful operators;
    columnar operators are CLS003's business and are skipped here.
    """
    if not classification.stateful:
        return None
    if getattr(op, "columnar_state", False):
        return None
    has_drain = callable(getattr(op, "state_of_port", None))
    has_seed = callable(getattr(op, "seed_state", None))
    if has_drain and has_seed:
        return None
    if has_drain != has_seed:
        missing = "seed_state" if has_drain else "state_of_port"
        detail = f"has {'state_of_port' if has_drain else 'seed_state'} but lacks {missing}"
    else:
        detail = "lacks both state_of_port and seed_state"
    return Diagnostic(
        WARNING,
        "CKP001",
        f"stateful operator {detail}: its state cannot be drained and "
        "seeded symmetrically, so plans containing it are not "
        "checkpointable (and Moving States cannot migrate it)",
        operator=classification.label,
    )


def classify_operator(op: object) -> Tuple[OperatorClassification, Optional[Diagnostic]]:
    """Classify one physical operator.

    Operators may self-declare via a ``migration_profile`` class attribute
    (one of the :data:`_KIND_TRAITS` kinds) — the extension point for
    user-defined operators; otherwise the built-in operator types are
    recognised structurally.  Unknown operators degrade to ``general``
    with a warning: that is always sound for GenMig provided the operator
    is snapshot-reducible, which only its author can promise.  Operators
    advertising ``columnar_state`` (the columnar hash join) additionally
    pass the CLS003 drainability check.
    """
    from ..operators.aggregate import Aggregate
    from ..operators.base import StatelessOperator
    from ..operators.difference import Difference
    from ..operators.duplicate import DuplicateElimination
    from ..operators.filter import Select
    from ..operators.join import _JoinBase
    from ..operators.project import Project
    from ..operators.union import Union
    from ..plans.fusion import FusedStateless

    label = getattr(op, "name", type(op).__name__)
    reducible = bool(getattr(op, "snapshot_reducible", True))
    declared = getattr(op, "migration_profile", None)
    if declared is not None:
        if declared not in _KIND_TRAITS:
            return (
                OperatorClassification.of_kind(label, "general", reducible),
                Diagnostic(
                    ERROR,
                    "CLS001",
                    f"operator declares unknown migration_profile {declared!r}; "
                    f"expected one of {sorted(_KIND_TRAITS)}",
                    operator=label,
                ),
            )
        return (
            OperatorClassification.of_kind(
                label, declared, reducible, keyed=bool(getattr(op, "keyed_state", False))
            ),
            _columnar_state_diagnostic(op, label),
        )
    if isinstance(op, FusedStateless):
        # A fused chain is exactly as migratable as its weakest member:
        # derive the classification from the member profiles rather than
        # trusting the container type.
        kinds = tuple(op.member_profiles)
        unknown = sorted({kind for kind in kinds if kind not in _KIND_TRAITS})
        if unknown:
            return (
                OperatorClassification.of_kind(label, "general", reducible),
                Diagnostic(
                    ERROR,
                    "CLS001",
                    f"fused operator declares unknown member profiles "
                    f"{unknown}; expected one of {sorted(_KIND_TRAITS)}",
                    operator=label,
                ),
            )
        traits = [_KIND_TRAITS[kind] for kind in kinds]
        all_stateless = all(kind == "stateless" for kind in kinds)
        start_preserving = all(t[0] for t in traits)
        kind = (
            "stateless"
            if all_stateless
            else ("order-restoring" if start_preserving else "general")
        )
        return OperatorClassification.of_kind(label, kind, reducible), None
    if isinstance(op, _JoinBase):
        return (
            OperatorClassification.of_kind(
                label, "join", reducible, keyed=bool(getattr(op, "keyed_state", False))
            ),
            None,
        )
    if isinstance(op, (Select, Project)):
        return OperatorClassification.of_kind(label, "stateless", reducible), None
    if isinstance(op, Union):
        return OperatorClassification.of_kind(label, "order-restoring", reducible), None
    if isinstance(op, (DuplicateElimination, Aggregate, Difference)):
        return OperatorClassification.of_kind(label, "general", reducible), None
    if isinstance(op, StatelessOperator):
        return OperatorClassification.of_kind(label, "stateless", reducible), None
    return (
        OperatorClassification.of_kind(label, "general", reducible),
        Diagnostic(
            WARNING,
            "CLS002",
            f"unknown operator type {type(op).__name__}: treated as general "
            "(GenMig-only); declare a migration_profile to classify it",
            operator=label,
        ),
    )


# --------------------------------------------------------------------- #
# Strategy verdicts
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StrategyVerdict:
    """Whether one migration strategy is sound for the analysed plan."""

    strategy: str
    safe: bool
    diagnostics: Tuple[Diagnostic, ...] = ()


def _strategy_verdicts(
    operators: Tuple[OperatorClassification, ...],
) -> Dict[str, StrategyVerdict]:
    pt_diags: List[Diagnostic] = []
    rp_diags: List[Diagnostic] = []
    gm_diags: List[Diagnostic] = []
    flm_diags: List[Diagnostic] = []
    for cls in operators:
        if not cls.pt_compatible:
            pt_diags.append(
                Diagnostic(
                    ERROR,
                    "PT001",
                    f"operator {cls.label!r} is stateful but not a join: "
                    "Parallel Track's old/new lineage flags cannot partition "
                    "its results (paper Section 3, Figure 2 counter-example); "
                    "its output validities can cross the migration start and "
                    "collide with new-box results",
                    operator=cls.label,
                )
            )
        if not cls.start_preserving:
            rp_diags.append(
                Diagnostic(
                    ERROR,
                    "RP001",
                    f"operator {cls.label!r} is not start-preserving: its "
                    "results may start mid-interval, so the reference-point "
                    "filter at T_split would drop or duplicate snapshots "
                    "(paper Section 4.5); use GenMig with coalesce",
                    operator=cls.label,
                )
            )
        if cls.stateful and not cls.keyed:
            flm_diags.append(
                Diagnostic(
                    ERROR,
                    "FLM001",
                    f"operator {cls.label!r} is stateful but not keyed: fluid "
                    "migration drains state one key range at a time, which "
                    "requires every stateful operator to partition its state "
                    "by a key function (an equi-join); use GenMig",
                    operator=cls.label,
                )
            )
        if not cls.start_preserving:
            flm_diags.append(
                Diagnostic(
                    ERROR,
                    "FLM002",
                    f"operator {cls.label!r} is not start-preserving: fluid "
                    "migration's per-range handover assumes the old box has "
                    "already emitted every result derivable from pre-flip "
                    "elements of a range, which only holds when results start "
                    "at a contributing input's start; use GenMig",
                    operator=cls.label,
                )
            )
        if not cls.snapshot_reducible:
            gm_diags.append(
                Diagnostic(
                    ERROR,
                    "GM001",
                    f"operator {cls.label!r} is not snapshot-reducible: no "
                    "black-box migration strategy is sound for it (GenMig's "
                    "correctness rests on snapshot-equivalent boxes, "
                    "Theorem 1)",
                    operator=cls.label,
                )
            )
    return {
        PARALLEL_TRACK: StrategyVerdict(
            PARALLEL_TRACK, not pt_diags and not gm_diags, tuple(pt_diags + gm_diags)
        ),
        REFERENCE_POINT: StrategyVerdict(
            REFERENCE_POINT, not rp_diags and not gm_diags, tuple(rp_diags + gm_diags)
        ),
        GENMIG: StrategyVerdict(GENMIG, not gm_diags, tuple(gm_diags)),
        FLUID: StrategyVerdict(
            FLUID, not flm_diags and not gm_diags, tuple(flm_diags + gm_diags)
        ),
    }


def _profile(operators: Tuple[OperatorClassification, ...]) -> str:
    """The legacy three-way profile of ``classify_box``."""
    join_only = True
    start_preserving = True
    for cls in operators:
        if cls.kind == "source":
            continue
        if not _KIND_TRAITS[cls.kind][3]:
            join_only = False
        if not cls.start_preserving:
            start_preserving = False
    if join_only:
        return "join-only"
    if start_preserving:
        return "start-preserving"
    return "general"


# --------------------------------------------------------------------- #
# The static T_split bound
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SplitBound:
    """The reachable-time-instant bound of Lemma 1, statically derived.

    Every raw element of source ``s`` with start timestamp ``t`` has, after
    windowing, a validity contained in ``[t, t + b + w_s)`` where ``b``
    bounds raw interval lengths (1 chronon for ordinary timestamped
    inputs) and ``w_s`` is the source's window.  The old box can therefore
    never reference a time instant at or beyond
    ``max_s(latest_start_s + b + w_s)``; a sound ``T_split`` must lie
    strictly above every instant *below* that horizon.
    """

    interval_bound: Time
    windows: Mapping[str, Time]

    @property
    def global_window(self) -> Time:
        """The global window constraint ``w`` (maximum over all inputs)."""
        return max(self.windows.values())

    @property
    def offset(self) -> Time:
        """``w + b``: the horizon's distance from the latest start seen."""
        return self.global_window + self.interval_bound

    def horizon(self, latest_starts: Mapping[str, Time]) -> Time:
        """Exclusive upper bound on instants reachable inside the old box."""
        return max(
            latest_starts[name] + self.interval_bound + window
            for name, window in self.windows.items()
            if name in latest_starts
        )

    def recommended_split(self, latest_starts: Mapping[str, Time]) -> Time:
        """The paper's choice: ``max(t_Si) + w + b - EPSILON`` (Remark 3)."""
        return max(latest_starts.values()) + self.offset - EPSILON

    def check(
        self, t_split: Time, latest_starts: Mapping[str, Time]
    ) -> List[Diagnostic]:
        """Validate a proposed split time against the static bound."""
        diagnostics: List[Diagnostic] = []
        horizon = self.horizon(latest_starts)
        # The last *integer* instant the old box can reference is
        # horizon - 1; T_split must lie strictly above it.
        if t_split <= horizon - 1:
            diagnostics.append(
                Diagnostic(
                    ERROR,
                    "TS001",
                    f"T_split={t_split} does not exceed the reachable horizon "
                    f"of the old box (instants up to {horizon - 1} are still "
                    f"referenced by consumed input): old-box state would be "
                    f"truncated mid-validity, corrupting snapshots",
                )
            )
        if isinstance(t_split, int) or t_split == int(t_split):
            diagnostics.append(
                Diagnostic(
                    WARNING,
                    "TS002",
                    f"T_split={t_split} lies on the chronon grid: Remark 3 "
                    "requires sub-chronon granularity so the split never "
                    "coincides with a start or end timestamp",
                )
            )
        if t_split > horizon:
            diagnostics.append(
                Diagnostic(
                    INFO,
                    "TS003",
                    f"T_split={t_split} exceeds the horizon {horizon}: sound, "
                    "but the parallel phase is prolonged by the slack",
                )
            )
        return diagnostics


# --------------------------------------------------------------------- #
# The verdict
# --------------------------------------------------------------------- #


@dataclass
class PlanVerdict:
    """Everything the verifier can say about one plan, box or query."""

    target: str
    profile: str
    operators: Tuple[OperatorClassification, ...]
    diagnostics: Tuple[Diagnostic, ...]
    strategies: Dict[str, StrategyVerdict] = field(default_factory=dict)
    split_bound: Optional[SplitBound] = None
    #: The key-shardability analysis (:class:`~repro.analysis.sharding.
    #: ShardingPlan`), populated by :func:`verify_query` only — sharding is
    #: decided against the *logical* query, windows included.  Its SHD001/
    #: SHD002 diagnostics live on the plan itself rather than in
    #: ``diagnostics``: a non-shardable plan is perfectly sound for
    #: single-process execution, so shardability is a capability verdict,
    #: not a defect.
    sharding: Optional[object] = None

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    def safe_strategies(self) -> Tuple[str, ...]:
        """The migration strategies sound for this plan, safest last."""
        return tuple(name for name in STRATEGIES if self.strategies[name].safe)

    def all_diagnostics(self) -> Tuple[Diagnostic, ...]:
        """Plan diagnostics plus every strategy verdict's diagnostics."""
        merged = list(self.diagnostics)
        for name in STRATEGIES:
            verdict = self.strategies.get(name)
            if verdict is not None:
                merged.extend(verdict.diagnostics)
        return tuple(merged)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable rendering (the CLI's ``--json`` output)."""
        return {
            "target": self.target,
            "profile": self.profile,
            "ok": self.ok,
            "operators": [
                {
                    "label": c.label,
                    "kind": c.kind,
                    "snapshot_reducible": c.snapshot_reducible,
                    "start_preserving": c.start_preserving,
                    "stateful": c.stateful,
                    "pt_compatible": c.pt_compatible,
                }
                for c in self.operators
            ],
            "diagnostics": [
                {
                    "severity": d.severity,
                    "code": d.code,
                    "message": d.message,
                    "operator": d.operator,
                }
                for d in self.all_diagnostics()
            ],
            "strategies": {
                name: verdict.safe for name, verdict in self.strategies.items()
            },
            "sharding": (
                None
                if self.sharding is None
                else {
                    "shardable": self.sharding.shardable,
                    "mode": self.sharding.mode,
                    "explain": self.sharding.explain(),
                    "diagnostics": [
                        {
                            "severity": d.severity,
                            "code": d.code,
                            "message": d.message,
                            "operator": d.operator,
                        }
                        for d in self.sharding.diagnostics
                    ],
                }
            ),
        }

    def report(self) -> str:
        """Human-readable multi-line report (the CLI's default output)."""
        lines = [f"plan: {self.target}", f"profile: {self.profile}"]
        lines.append("operators:")
        for cls in self.operators:
            lines.append(f"  {cls.label:<40} {cls.kind:<16} {cls.description}")
        lines.append("strategies:")
        for name in STRATEGIES:
            verdict = self.strategies.get(name)
            if verdict is None:
                continue
            state = "safe" if verdict.safe else "UNSAFE"
            lines.append(f"  {name:<16} {state}")
            for diag in verdict.diagnostics:
                lines.append(f"    {diag}")
        if self.split_bound is not None:
            bound = self.split_bound
            lines.append(
                f"T_split bound: max(t_Si) + w + b with w={bound.global_window}, "
                f"b={bound.interval_bound} (offset {bound.offset})"
            )
        if self.sharding is not None:
            lines.append(f"sharding: {self.sharding.explain()}")
            for diag in self.sharding.diagnostics:
                lines.append(f"  {diag}")
        if self.diagnostics:
            lines.append("diagnostics:")
            for diag in self.diagnostics:
                lines.append(f"  {diag}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Logical-plan verification
# --------------------------------------------------------------------- #


def _node_label(node: LogicalPlan) -> str:
    """One-line label of a node without rendering its whole subtree."""
    if isinstance(node, Source):
        return node.name
    if isinstance(node, SelectNode):
        return f"select[{node.predicate!r}]"
    if isinstance(node, ProjectNode):
        return f"project[{', '.join(name for _, name in node.outputs)}]"
    if isinstance(node, JoinNode):
        condition = repr(node.condition) if node.condition is not None else "true"
        return f"join[{condition}]"
    if isinstance(node, DistinctNode):
        return "distinct"
    if isinstance(node, AggregateNode):
        aggregates = ", ".join(spec.output_name() for spec in node.aggregates)
        group = f" by {list(node.group_by)}" if node.group_by else ""
        return f"aggregate[{aggregates}{group}]"
    if isinstance(node, UnionNode):
        return "union"
    if isinstance(node, DifferenceNode):
        return "difference"
    return type(node).__name__


def _validate_schemas(plan: LogicalPlan, diagnostics: List[Diagnostic]) -> Schema:
    """Recompute schemas bottom-up, re-validating attribute references.

    Independent of the constructor checks on purpose: a transformation
    rule that rebuilds nodes incorrectly, or a subclass overriding
    ``schema``, is caught here instead of corrupting results downstream.
    """
    label = _node_label(plan)
    child_schemas = [_validate_schemas(child, diagnostics) for child in plan.children]

    def check_columns(columns: set, available: set, code: str, what: str) -> None:
        missing = columns - available
        if missing:
            diagnostics.append(
                Diagnostic(
                    ERROR,
                    code,
                    f"{what} references unknown columns {sorted(missing)} "
                    f"(available: {sorted(available)})",
                    operator=label,
                )
            )

    computed: Schema
    if isinstance(plan, Source):
        computed = plan.schema
    elif isinstance(plan, SelectNode):
        check_columns(
            plan.predicate.columns(), set(child_schemas[0]), "SCH002", "predicate"
        )
        computed = child_schemas[0]
    elif isinstance(plan, ProjectNode):
        available = set(child_schemas[0])
        for expression, _ in plan.outputs:
            check_columns(expression.columns(), available, "SCH003", "projection")
        computed = tuple(name for _, name in plan.outputs)
    elif isinstance(plan, JoinNode):
        overlap = set(child_schemas[0]) & set(child_schemas[1])
        if overlap:
            diagnostics.append(
                Diagnostic(
                    ERROR,
                    "SCH004",
                    f"join inputs share column names {sorted(overlap)}",
                    operator=label,
                )
            )
        if plan.condition is not None:
            check_columns(
                plan.condition.columns(),
                set(child_schemas[0]) | set(child_schemas[1]),
                "SCH005",
                "join condition",
            )
        computed = child_schemas[0] + child_schemas[1]
    elif isinstance(plan, AggregateNode):
        available = set(child_schemas[0])
        for spec in plan.aggregates:
            if spec.column is not None and spec.column not in available:
                diagnostics.append(
                    Diagnostic(
                        ERROR,
                        "SCH006",
                        f"aggregate references unknown column {spec.column!r}",
                        operator=label,
                    )
                )
        check_columns(set(plan.group_by), available, "SCH006", "GROUP BY")
        computed = plan.group_by + tuple(spec.output_name() for spec in plan.aggregates)
    elif isinstance(plan, (UnionNode, DifferenceNode)):
        if len(child_schemas[0]) != len(child_schemas[1]):
            diagnostics.append(
                Diagnostic(
                    ERROR,
                    "SCH007",
                    f"inputs have different arity: {child_schemas[0]} vs "
                    f"{child_schemas[1]}",
                    operator=label,
                )
            )
        computed = child_schemas[0]
    elif isinstance(plan, DistinctNode):
        computed = child_schemas[0]
    else:
        computed = plan.schema
    declared = plan.schema
    if tuple(declared) != tuple(computed):
        diagnostics.append(
            Diagnostic(
                ERROR,
                "SCH001",
                f"declared schema {list(declared)} does not match the schema "
                f"propagated from the children {list(computed)}",
                operator=label,
            )
        )
    return computed


def _collect_classifications(
    plan: LogicalPlan, out: List[OperatorClassification]
) -> None:
    out.append(classify_logical(plan))
    for child in plan.children:
        _collect_classifications(child, out)


def verify_plan(plan: LogicalPlan) -> PlanVerdict:
    """Statically verify one logical plan: schemas and migration safety."""
    diagnostics: List[Diagnostic] = []
    _validate_schemas(plan, diagnostics)
    classifications: List[OperatorClassification] = []
    _collect_classifications(plan, classifications)
    operators = tuple(classifications)
    return PlanVerdict(
        target=plan.signature(),
        profile=_profile(operators),
        operators=operators,
        diagnostics=tuple(diagnostics),
        strategies=_strategy_verdicts(operators),
    )


def verify_query(query: Query, interval_bound: Time = 1) -> PlanVerdict:
    """Verify a complete query: the plan plus its window metadata."""
    verdict = verify_plan(query.plan)
    diagnostics = list(verdict.diagnostics)
    missing = set(query.plan.sources()) - set(query.windows)
    if missing:
        diagnostics.append(
            Diagnostic(
                ERROR,
                "WIN001",
                f"no window declared for sources {sorted(missing)}: their "
                "state would never expire and T_split would be unreachable",
            )
        )
    for name, window in query.windows.items():
        if window >= MAX_TIME:
            diagnostics.append(
                Diagnostic(
                    WARNING,
                    "WIN002",
                    f"source {name!r} has an unbounded window: a GenMig "
                    "migration over it can never complete (the old box "
                    "never drains)",
                )
            )
    windows = {
        name: window for name, window in query.windows.items() if window < MAX_TIME
    }
    verdict.diagnostics = tuple(diagnostics)
    if windows:
        verdict.split_bound = SplitBound(
            interval_bound=interval_bound, windows=dict(windows)
        )
    from .sharding import classify_sharding

    verdict.sharding = classify_sharding(query)
    return verdict


# --------------------------------------------------------------------- #
# Physical-box verification
# --------------------------------------------------------------------- #


def verify_box(box: "Box") -> PlanVerdict:
    """Verify a physical box: wiring sanity plus migration safety."""
    diagnostics: List[Diagnostic] = []
    classifications: List[OperatorClassification] = []
    for op in box.operators:
        classification, diag = classify_operator(op)
        classifications.append(classification)
        if diag is not None:
            diagnostics.append(diag)
        ckp = _checkpoint_state_diagnostic(op, classification)
        if ckp is not None:
            diagnostics.append(ckp)

    # Wiring sanity: every input port of every operator must be fed by a
    # tap or an upstream subscription, exactly once.
    feeds: Dict[Tuple[int, int], int] = {}
    for ports in box.taps.values():
        for op, port in ports:
            feeds[(id(op), port)] = feeds.get((id(op), port), 0) + 1
    for op in box.operators:
        for downstream, port in getattr(op, "subscribers", []):
            feeds[(id(downstream), port)] = feeds.get((id(downstream), port), 0) + 1
    by_id = {id(op): op for op in box.operators}
    for op in box.operators:
        for port in range(getattr(op, "arity", 1)):
            count = feeds.get((id(op), port), 0)
            if count == 0 and box.taps:
                diagnostics.append(
                    Diagnostic(
                        WARNING,
                        "BOX002",
                        f"input port {port} receives no tap or upstream "
                        "subscription: the operator can never make progress "
                        "on it (its watermark stays at the origin, blocking "
                        "expiration downstream)",
                        operator=getattr(op, "name", type(op).__name__),
                    )
                )
            elif count > 1:
                diagnostics.append(
                    Diagnostic(
                        WARNING,
                        "BOX003",
                        f"input port {port} is fed by {count} upstreams: "
                        "interleaved feeds on one port break per-port "
                        "start-timestamp monotonicity",
                        operator=getattr(op, "name", type(op).__name__),
                    )
                )
    if id(box.root) not in by_id:
        diagnostics.append(
            Diagnostic(
                ERROR,
                "BOX001",
                f"root operator {getattr(box.root, 'name', box.root)!r} is "
                "not part of the box's operator list",
            )
        )
    operators = tuple(classifications)
    strategies = _strategy_verdicts(operators)

    # FLM003: fluid migration drains state through the tap operators, so
    # every tap must land on a keyed stateful operator's entry port — a
    # tap feeding anything else (a Select in front of the join, say) has
    # no per-key state to drain at the routing frontier.
    flm_taps: List[Diagnostic] = []
    for ports in box.taps.values():
        for op, port in ports:
            if not getattr(op, "keyed_state", False):
                flm_taps.append(
                    Diagnostic(
                        ERROR,
                        "FLM003",
                        f"tap feeds input port {port} of a non-keyed "
                        "operator: fluid migration can only hand over a key "
                        "range when the tap lands directly on keyed join "
                        "state (the range drain happens at the frontier)",
                        operator=getattr(op, "name", type(op).__name__),
                    )
                )
    if flm_taps:
        base = strategies[FLUID]
        strategies[FLUID] = StrategyVerdict(
            FLUID, False, base.diagnostics + tuple(flm_taps)
        )

    return PlanVerdict(
        target=box.label or "box",
        profile=_profile(operators),
        operators=operators,
        diagnostics=tuple(diagnostics),
        strategies=strategies,
    )


# --------------------------------------------------------------------- #
# Migration verification (old/new box pairs)
# --------------------------------------------------------------------- #


@dataclass
class MigrationVerdict:
    """The combined analysis of an old/new box pair.

    ``recommended`` is the cheapest strategy sound for *both* boxes under
    the default policy (reference-point when both are start-preserving,
    GenMig with coalesce otherwise; Parallel Track is never recommended —
    it exists as a baseline), and ``reason`` states the justification the
    controller logs.
    """

    old: PlanVerdict
    new: PlanVerdict
    strategies: Dict[str, StrategyVerdict]
    recommended: str
    reason: str

    @property
    def profiles(self) -> frozenset:
        return frozenset((self.old.profile, self.new.profile))


def verify_migration(
    old_box: "Box",
    new_box: "Box",
    scenarios: Optional[Sequence[object]] = None,
    modelcheck_budget: Optional[int] = None,
) -> MigrationVerdict:
    """Analyse an old/new box pair and recommend a sound strategy.

    ``scenarios`` optionally supplies bounded model-check scenarios
    (:class:`repro.analysis.modelcheck.Scenario` or
    :class:`repro.analysis.races.ShardScenario`): each is exhaustively
    explored and its diagnostics are merged into the verdict — a failed
    check demotes the exercised strategy's bucket to unsafe (``MCK001`` /
    ``MCK002``; transport scenarios, which are strategy-agnostic, demote
    every bucket via ``RAC001``/``RAC002``), and the recommendation is
    recomputed over the demoted verdict.  ``modelcheck_budget`` bounds
    the schedules explored per scenario.
    """
    old = verify_box(old_box)
    new = verify_box(new_box)
    strategies: Dict[str, StrategyVerdict] = {}
    for name in STRATEGIES:
        safe = old.strategies[name].safe and new.strategies[name].safe
        diagnostics = old.strategies[name].diagnostics + new.strategies[name].diagnostics
        strategies[name] = StrategyVerdict(name, safe, diagnostics)

    statically_safe = {name for name in STRATEGIES if strategies[name].safe}
    modelcheck_failed: set = set()
    for scenario in scenarios or ():
        result = scenario.run_check(budget=modelcheck_budget)
        buckets = (
            [result.strategy] if result.strategy in STRATEGIES else list(STRATEGIES)
        )
        extra = tuple(result.diagnostics())
        for bucket in buckets:
            base = strategies[bucket]
            demoted = not result.passed
            if demoted:
                modelcheck_failed.add(bucket)
            strategies[bucket] = StrategyVerdict(
                bucket, base.safe and not demoted, base.diagnostics + extra
            )

    if strategies[REFERENCE_POINT].safe:
        recommended = REFERENCE_POINT
        reason = (
            "both boxes are start-preserving: the reference-point "
            "optimization saves the coalesce operator's memory and CPU"
        )
    elif REFERENCE_POINT in modelcheck_failed and REFERENCE_POINT in statically_safe:
        recommended = GENMIG
        reason = (
            "the model checker found a schedule that breaks snapshot-"
            "equivalence under the reference-point optimization; falling "
            "back to GenMig with coalesce"
        )
    else:
        recommended = GENMIG
        offenders = sorted(
            {
                d.operator
                for d in strategies[REFERENCE_POINT].diagnostics
                if d.operator is not None
            }
        )
        reason = (
            f"non-start-preserving operators {offenders} require GenMig "
            "with coalesce (the general strategy)"
        )
    return MigrationVerdict(
        old=old, new=new, strategies=strategies, recommended=recommended, reason=reason
    )


# --------------------------------------------------------------------- #
# The Figure 2 counter-example, as data
# --------------------------------------------------------------------- #


def figure2_plans() -> Tuple[LogicalPlan, LogicalPlan]:
    """The paper's Figure 2 pair: ``distinct(A ⋈ B)`` and its push-down.

    The second plan — duplicate elimination pushed below the join — is the
    counter-example that breaks Parallel Track: its ``distinct`` operators
    are stateful non-joins, so :func:`verify_plan` rejects PT for it with
    a ``PT001`` diagnostic while accepting GenMig.
    """
    from ..optimizer.rules import push_down_distinct
    from ..plans.expressions import Comparison, Field

    original = DistinctNode(
        JoinNode(
            Source("A", ["x"]),
            Source("B", ["y"]),
            Comparison("=", Field("A.x"), Field("B.y")),
        )
    )
    return original, push_down_distinct(original)
