"""Positive-negative tuple implementation (Section 2.3) and its GenMig.

The PN model expresses validity with paired ``+``/``-`` elements instead of
intervals.  ``convert`` makes the equivalence of the two physical models
executable; ``operators`` provides the PN algebra; ``genmig`` transfers the
migration strategy per Section 4.6.
"""

from .convert import interval_to_pn, pn_to_interval
from .genmig import PNBox, PNMigrationReport, run_pn_migration
from .operators import (
    PNAggregate,
    PNCollector,
    PNDistinct,
    PNJoin,
    PNOperator,
    PNProject,
    PNSelect,
    PNWindow,
    run_pn_pipeline,
)

__all__ = [
    "PNAggregate",
    "PNBox",
    "PNCollector",
    "PNDistinct",
    "PNJoin",
    "PNMigrationReport",
    "PNOperator",
    "PNProject",
    "PNSelect",
    "PNWindow",
    "interval_to_pn",
    "pn_to_interval",
    "run_pn_migration",
    "run_pn_pipeline",
]
