"""Positive-negative physical operators (the STREAM/Nile style, Section 2.3).

A PN stream is ordered by timestamps; a positive element announces a
payload's validity, the matching negative its expiration.  Operators are
push-based like their interval counterparts, with a staging heap to keep
the merged output of positives and scheduled negatives ordered.

The PN model doubles stream rates relative to the interval model (every
validity costs two elements) — the drawback the paper points out — but it
is the native model of several engines, and Section 4.6 shows GenMig
transfers to it; see :mod:`repro.pn.genmig`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..temporal.element import Payload, PNElement, Sign, negative, positive
from ..temporal.time import MAX_TIME, MIN_TIME, Time


class PNOperator:
    """Base class of PN operators: ports, watermarks, ordered staging."""

    def __init__(self, arity: int = 1, name: str = "") -> None:
        if arity < 1:
            raise ValueError(f"operator arity must be >= 1, got {arity}")
        self.arity = arity
        self.name = name or type(self).__name__
        self._subscribers: List[Tuple["PNOperator", int]] = []
        self._sinks: List[object] = []
        self._watermarks: List[Time] = [MIN_TIME] * arity
        self._heap: List[Tuple[Time, int, PNElement]] = []
        self._sequence = itertools.count()
        self._emitted_watermark: Time = MIN_TIME

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def subscribe(self, downstream: "PNOperator", port: int = 0) -> None:
        """Route this operator's output into ``downstream``."""
        self._subscribers.append((downstream, port))

    def attach_sink(self, sink: object) -> None:
        """Attach a terminal consumer (``process``/``process_heartbeat``)."""
        self._sinks.append(sink)

    def detach_sink(self, sink: object) -> None:
        """Detach a terminal consumer."""
        self._sinks.remove(sink)

    # ------------------------------------------------------------------ #
    # Input protocol
    # ------------------------------------------------------------------ #

    def process(self, element: PNElement, port: int = 0) -> None:
        """Consume one PN element."""
        if element.timestamp < self._watermarks[port]:
            raise ValueError(
                f"{self.name}: out-of-order PN element on port {port}: "
                f"{element.timestamp} < {self._watermarks[port]}"
            )
        self._watermarks[port] = element.timestamp
        self._on_element(element, port)
        self._advance()

    def process_heartbeat(self, t: Time, port: int = 0) -> None:
        """Consume a progress promise for one port."""
        if t <= self._watermarks[port]:
            return
        self._watermarks[port] = t
        self._advance()

    @property
    def min_watermark(self) -> Time:
        return min(self._watermarks)

    # ------------------------------------------------------------------ #
    # Subclass hooks and output
    # ------------------------------------------------------------------ #

    def _on_element(self, element: PNElement, port: int) -> None:
        raise NotImplementedError

    def state_size(self) -> int:
        """Number of live payloads held (for accounting and tests)."""
        return 0

    def _stage(self, element: PNElement) -> None:
        heapq.heappush(self._heap, (element.timestamp, next(self._sequence), element))

    def _advance(self) -> None:
        watermark = self.min_watermark
        while self._heap and self._heap[0][0] <= watermark:
            self._emit(heapq.heappop(self._heap)[2])
        if watermark > self._emitted_watermark:
            self._emitted_watermark = watermark
            for downstream, port in self._subscribers:
                downstream.process_heartbeat(min(watermark, MAX_TIME), port)
            for sink in self._sinks:
                sink.process_heartbeat(min(watermark, MAX_TIME))

    def _emit(self, element: PNElement) -> None:
        for downstream, port in self._subscribers:
            downstream.process(element, port)
        for sink in self._sinks:
            sink.process(element)


class PNWindow(PNOperator):
    """Time-based sliding window: schedule the expiration of every element.

    For each incoming positive element with timestamp ``t``, forward it and
    schedule the matching negative at ``t + w + 1`` (window size + 1 time
    units later, Section 2.3).  Raw inputs carry positives only.
    """

    def __init__(self, size: Time, name: str = "") -> None:
        super().__init__(arity=1, name=name or f"pn-window[{size}]")
        if size < 0:
            raise ValueError(f"window size must be non-negative, got {size}")
        self.size = size

    def _on_element(self, element: PNElement, port: int) -> None:
        if element.is_negative:
            raise ValueError("a window's raw input must contain positives only")
        self._stage(element)
        self._stage(negative(element.payload, element.timestamp + self.size + 1))


class PNSelect(PNOperator):
    """Selection: both signs of a payload pass or are dropped together."""

    def __init__(self, predicate: Callable[[Payload], bool], name: str = "") -> None:
        super().__init__(arity=1, name=name or "pn-select")
        self.predicate = predicate

    def _on_element(self, element: PNElement, port: int) -> None:
        if self.predicate(element.payload):
            self._stage(element)


class PNProject(PNOperator):
    """Projection: map the payload, keep timestamp and sign."""

    def __init__(self, mapping: Callable[[Payload], Payload], name: str = "") -> None:
        super().__init__(arity=1, name=name or "pn-project")
        self.mapping = mapping

    def _on_element(self, element: PNElement, port: int) -> None:
        payload = self.mapping(element.payload)
        if not isinstance(payload, tuple):
            payload = (payload,)
        self._stage(PNElement(payload, element.timestamp, element.sign))


class PNJoin(PNOperator):
    """Symmetric PN join.

    A positive on one side joins every live partner and emits positive
    results; a negative retires its element and emits negative results for
    every pair it participated in whose partner is still live.  Liveness is
    only meaningful under *global* timestamp order, but the two input ports
    may progress with skew (one window releases its scheduled negatives
    before the other has caught up), so inputs are staged in a merge buffer
    and applied in timestamp order once both ports' watermarks have passed
    them — each pair is then born and dies exactly once.
    """

    def __init__(
        self,
        predicate: Callable[[Payload, Payload], bool],
        combiner: Optional[Callable[[Payload, Payload], Payload]] = None,
        name: str = "",
    ) -> None:
        super().__init__(arity=2, name=name or "pn-join")
        self.predicate = predicate
        self.combiner = combiner or (lambda left, right: left + right)
        self._live: List[Dict[Payload, int]] = [{}, {}]
        self._pending: List[Tuple[Time, int, int, PNElement]] = []
        self._pending_sequence = itertools.count()

    def _on_element(self, element: PNElement, port: int) -> None:
        heapq.heappush(
            self._pending,
            (element.timestamp, next(self._pending_sequence), port, element),
        )

    def _advance(self) -> None:
        watermark = self.min_watermark
        while self._pending and self._pending[0][0] <= watermark:
            _, _, port, element = heapq.heappop(self._pending)
            self._apply(element, port)
        super()._advance()

    def _apply(self, element: PNElement, port: int) -> None:
        payload = element.payload
        partners = self._live[1 - port]
        if element.is_positive:
            self._live[port][payload] = self._live[port].get(payload, 0) + 1
        else:
            count = self._live[port].get(payload, 0)
            if count <= 0:
                raise ValueError(f"{self.name}: negative for non-live payload {payload}")
            if count == 1:
                del self._live[port][payload]
            else:
                self._live[port][payload] = count - 1
        for partner, multiplicity in partners.items():
            if port == 0:
                left, right = payload, partner
            else:
                left, right = partner, payload
            if not self.predicate(left, right):
                continue
            combined = self.combiner(left, right)
            for _ in range(multiplicity):
                self._stage(PNElement(combined, element.timestamp, element.sign))

    def state_size(self) -> int:
        return sum(sum(side.values()) for side in self._live) + len(self._pending)


class PNDistinct(PNOperator):
    """Duplicate elimination: emit a payload's first positive and last negative."""

    def __init__(self, name: str = "") -> None:
        super().__init__(arity=1, name=name or "pn-distinct")
        self._counts: Dict[Payload, int] = {}

    def _on_element(self, element: PNElement, port: int) -> None:
        payload = element.payload
        if element.is_positive:
            count = self._counts.get(payload, 0)
            if count == 0:
                self._stage(element)
            self._counts[payload] = count + 1
        else:
            count = self._counts.get(payload, 0)
            if count <= 0:
                raise ValueError(f"{self.name}: negative for non-live payload {payload}")
            if count == 1:
                del self._counts[payload]
                self._stage(element)
            else:
                self._counts[payload] = count - 1

    def state_size(self) -> int:
        return sum(self._counts.values())


class PNAggregate(PNOperator):
    """Grouped snapshot aggregation in the PN model.

    Maintains per group a running bag of live payloads; whenever the
    aggregate value of a group changes (a positive or negative arrives),
    the operator retires the previous value (negative) and announces the
    new one (positive) — the classic PN "update as a sign pair" pattern.
    A group's last value is retired without replacement when it empties.

    Like the PN join, inputs must be applied in global timestamp order, so
    a merge buffer drains up to the watermark (single input port, so the
    buffer only reorders same-call staging, but it keeps the operator
    uniform and safe under future multi-port extensions).
    """

    def __init__(
        self,
        functions,
        group_key: Callable[[Payload], Payload],
        name: str = "",
    ) -> None:
        super().__init__(arity=1, name=name or "pn-aggregate")
        if not functions:
            raise ValueError("at least one aggregate function is required")
        self.functions = tuple(functions)
        self.group_key = group_key
        self._groups: Dict[Payload, List[Payload]] = {}
        self._current: Dict[Payload, Payload] = {}

    def _on_element(self, element: PNElement, port: int) -> None:
        key = self.group_key(element.payload)
        if not isinstance(key, tuple):
            key = (key,)
        members = self._groups.setdefault(key, [])
        if element.is_positive:
            members.append(element.payload)
        else:
            try:
                members.remove(element.payload)
            except ValueError:
                raise ValueError(
                    f"{self.name}: negative for non-live payload {element.payload}"
                ) from None
        previous = self._current.get(key)
        if members:
            value = key + tuple(fn(members) for fn in self.functions)
        else:
            value = None
            del self._groups[key]
        if value == previous:
            return
        if previous is not None:
            self._stage(PNElement(previous, element.timestamp, Sign.NEGATIVE))
        if value is not None:
            self._stage(PNElement(value, element.timestamp, Sign.POSITIVE))
            self._current[key] = value
        else:
            del self._current[key]

    def state_size(self) -> int:
        return sum(len(members) for members in self._groups.values())


class PNCollector:
    """Terminal sink collecting PN output."""

    def __init__(self) -> None:
        self.elements: List[PNElement] = []

    def process(self, element: PNElement, port: int = 0) -> None:
        self.elements.append(element)

    def process_heartbeat(self, t: Time, port: int = 0) -> None:
        """Heartbeats carry no results."""


def run_pn_pipeline(
    inputs: Dict[str, List[PNElement]],
    taps: Dict[str, List[Tuple[PNOperator, int]]],
    root: PNOperator,
) -> List[PNElement]:
    """Drive named PN streams through a plan in global timestamp order."""
    collector = PNCollector()
    root.attach_sink(collector)
    merged: List[Tuple[Time, int, str, PNElement]] = []
    sequence = 0
    for name, elements in inputs.items():
        for element in elements:
            merged.append((element.timestamp, sequence, name, element))
            sequence += 1
    merged.sort(key=lambda item: (item[0], item[1]))
    for timestamp, _, name, element in merged:
        # Advance every input to the global clock *before* processing the
        # element, so all scheduled expirations below ``timestamp`` (e.g.
        # window-generated negatives) are applied first — the global
        # temporal processing order of the paper's experiments.
        for ports in taps.values():
            for operator, port in ports:
                operator.process_heartbeat(timestamp, port)
        for operator, port in taps[name]:
            operator.process(element, port)
    for ports in taps.values():
        for operator, port in ports:
            operator.process_heartbeat(MAX_TIME, port)
    root.detach_sink(collector)
    return collector.elements
