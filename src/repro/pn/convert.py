"""Conversions between interval-based and positive-negative streams.

Section 2.3: an interval element ``(e, [t_S, t_E))`` corresponds to the
pair ``(e, t_S, +)`` and ``(e, t_E, -)``.  The conversions below make the
semantic equivalence of the two physical models executable — and testable:
any interval pipeline can be checked against its PN counterpart.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterable, List, Tuple

from ..temporal.element import Payload, PNElement, Sign, StreamElement, negative, positive
from ..temporal.time import MAX_TIME


def interval_to_pn(elements: Iterable[StreamElement]) -> List[PNElement]:
    """Convert an interval stream into a timestamp-ordered PN stream.

    Elements with unbounded validity produce only a positive element.
    """
    items: List[Tuple[object, int, PNElement]] = []
    sequence = 0
    for element in elements:
        items.append((element.start, sequence, positive(element.payload, element.start)))
        sequence += 1
        if not element.interval.is_unbounded:
            items.append((element.end, sequence, negative(element.payload, element.end)))
            sequence += 1
    items.sort(key=lambda item: (item[0], item[1]))
    return [pn for _, _, pn in items]


def pn_to_interval(elements: Iterable[PNElement]) -> List[StreamElement]:
    """Convert a PN stream back into an interval stream.

    Positives and negatives are matched per payload in FIFO order; a
    positive without a matching negative yields an unbounded interval.

    Raises:
        ValueError: on a negative element without a preceding positive.
    """
    from ..temporal.interval import TimeInterval

    open_positives: Dict[Payload, Deque[PNElement]] = {}
    results: List[Tuple[object, int, StreamElement]] = []
    sequence = 0
    for element in elements:
        if element.is_positive:
            open_positives.setdefault(element.payload, deque()).append(element)
            continue
        pending = open_positives.get(element.payload)
        if not pending:
            raise ValueError(f"negative element without matching positive: {element}")
        opened = pending.popleft()
        if not pending:
            del open_positives[element.payload]
        if element.timestamp > opened.timestamp:
            results.append(
                (
                    opened.timestamp,
                    sequence,
                    StreamElement(
                        element.payload,
                        TimeInterval(opened.timestamp, element.timestamp),
                    ),
                )
            )
            sequence += 1
    for pending in open_positives.values():
        for opened in pending:
            results.append(
                (
                    opened.timestamp,
                    sequence,
                    StreamElement(
                        opened.payload, TimeInterval(opened.timestamp, MAX_TIME)
                    ),
                )
            )
            sequence += 1
    results.sort(key=lambda item: (item[0], item[1]))
    return [element for _, _, element in results]
