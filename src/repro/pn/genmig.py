"""GenMig for the positive-negative implementation (Section 4.6).

The PN variant keeps GenMig's logical split of the time domain but trades
interval splitting for reference points:

* ``T_split`` is set to ``max(t_Si) + w + 1 + EPSILON`` — the Algorithm 1
  formula verbatim.  Every element alive at migration start expires (its
  window-scheduled negative fires) strictly *below* ``T_split``, so the old
  box alone accounts for all output up to ``T_split``.
* The split sends every incoming element to the new box, and additionally
  to the old box while its timestamp lies below ``T_split``.  Negatives
  whose positive predates the migration are withheld from the new box (it
  never saw the positive); their expirations are the old box's business.
* Using each result's timestamp as its reference point, results from the
  old box are accepted when below ``T_split`` and from the new box when
  above it — each output event is produced by exactly one box, and since
  both outputs are internally ordered, emitting the old box's results first
  suffices (no synchronisation buffer).
* The migration ends once every input stream has passed ``T_split``.

This module provides a self-contained batch runner over finite PN inputs;
it demonstrates the Section 4.6 construction end to end and is validated
against the interval implementation through the Section 2.3 conversions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..recovery.errors import RecoveryError
from ..temporal.element import Payload, PNElement
from ..temporal.time import EPSILON, MAX_TIME, Time
from .operators import PNCollector, PNOperator, PNWindow


@dataclass
class PNBox:
    """A PN physical plan: input taps and an output root."""

    taps: Dict[str, List[Tuple[PNOperator, int]]]
    root: PNOperator


@dataclass
class PNMigrationReport:
    """What happened during a PN GenMig run."""

    t_split: Time
    triggered_at: Time
    completed_at: Time
    old_accepted: int
    new_accepted: int
    old_rejected: int
    new_rejected: int

    @property
    def duration(self) -> Time:
        return self.completed_at - self.triggered_at


class _ReferencePointSink:
    """Collects a box's output, accepting by the reference-point rule."""

    def __init__(self) -> None:
        self.accepted: List[PNElement] = []
        self.rejected = 0
        #: Accept below (old box) or above (new box) this bound; ``None``
        #: accepts everything (pre-migration old box).
        self.accept_below: Optional[Time] = None
        self.accept_above: Optional[Time] = None

    def process(self, element: PNElement, port: int = 0) -> None:
        if self.accept_below is not None and element.timestamp >= self.accept_below:
            self.rejected += 1
            return
        if self.accept_above is not None and element.timestamp <= self.accept_above:
            self.rejected += 1
            return
        self.accepted.append(element)

    def process_heartbeat(self, t: Time, port: int = 0) -> None:
        """Progress only; nothing to collect."""


class _PNSplit:
    """Routes windowed PN elements between the boxes during migration."""

    def __init__(
        self,
        old_targets: List[Tuple[PNOperator, int]],
        new_targets: List[Tuple[PNOperator, int]],
        window: Time,
    ) -> None:
        self.old_targets = old_targets
        self.new_targets = new_targets
        self.window = window
        self.t_split: Optional[Time] = None
        self.migrating = False
        # Positives forwarded to the new box, keyed by (payload, birth
        # timestamp).  A window-scheduled negative at ``t`` expires the
        # positive born at ``t - w - 1`` (Section 2.3); negatives whose
        # positive predates the migration are withheld from the new box.
        self._new_live: Dict[Tuple[Payload, Time], int] = {}
        self._old_watermark: Time = 0
        self._new_watermark: Time = 0

    def process(self, element: PNElement, port: int = 0) -> None:
        to_old = not self.migrating or element.timestamp < self.t_split
        if to_old:
            for operator, target_port in self.old_targets:
                operator.process(element, target_port)
        if self.migrating:
            if element.is_positive:
                key = (element.payload, element.timestamp)
                self._new_live[key] = self._new_live.get(key, 0) + 1
                forward_new = True
            else:
                key = (element.payload, element.timestamp - self.window - 1)
                live = self._new_live.get(key, 0)
                forward_new = live > 0
                if forward_new:
                    if live == 1:
                        del self._new_live[key]
                    else:
                        self._new_live[key] = live - 1
            if forward_new:
                for operator, target_port in self.new_targets:
                    operator.process(element, target_port)
        self.process_heartbeat(element.timestamp, port)

    def process_heartbeat(self, t: Time, port: int = 0) -> None:
        if not self.migrating:
            if t > self._old_watermark:
                self._old_watermark = t
                for operator, target_port in self.old_targets:
                    operator.process_heartbeat(t, target_port)
            return
        old_promise = t if t < self.t_split else MAX_TIME
        if old_promise > self._old_watermark:
            self._old_watermark = old_promise
            for operator, target_port in self.old_targets:
                operator.process_heartbeat(min(old_promise, MAX_TIME), target_port)
        if t > self._new_watermark:
            self._new_watermark = t
            for operator, target_port in self.new_targets:
                operator.process_heartbeat(t, target_port)


def run_pn_migration(
    inputs: Dict[str, List[PNElement]],
    windows: Dict[str, Time],
    old_box: PNBox,
    new_box: PNBox,
    migrate_at: Time,
    batch_size: int = 32,
) -> Tuple[List[PNElement], PNMigrationReport]:
    """Run a PN query over finite inputs with one GenMig migration.

    Args:
        inputs: per source, the raw positive elements in timestamp order.
        windows: per source, the time-based window size.
        old_box / new_box: snapshot-equivalent PN plans.
        migrate_at: application time at which the migration is triggered.
        batch_size: cap on the equal-timestamp same-source runs the driver
            loop processes per turn.  The arming check, the heartbeat
            fan-out and the completion check are idempotent within such a
            run, so every value produces byte-identical output; ``1``
            restores the strict element-at-a-time loop.

    Returns:
        The accepted output (old box's results followed by the new box's,
        per the reference-point rule) and the migration report.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    global_window = max(windows.values())
    old_sink = _ReferencePointSink()
    new_sink = _ReferencePointSink()
    old_box.root.attach_sink(old_sink)
    new_box.root.attach_sink(new_sink)

    splits: Dict[str, _PNSplit] = {}
    window_ops: Dict[str, PNWindow] = {}
    for source in inputs:
        split = _PNSplit(
            old_box.taps.get(source, []),
            new_box.taps.get(source, []),
            windows[source],
        )
        window_op = PNWindow(windows[source], name=f"pn-window[{source}]")
        window_op.subscribe(_SplitAdapter(split), 0)
        splits[source] = split
        window_ops[source] = window_op

    merged: List[Tuple[Time, int, str, PNElement]] = []
    sequence = 0
    for source, elements in inputs.items():
        for element in elements:
            merged.append((element.timestamp, sequence, source, element))
            sequence += 1
    merged.sort(key=lambda item: (item[0], item[1]))

    last_seen: Dict[str, Time] = {source: 0 for source in inputs}
    t_split: Optional[Time] = None
    triggered_at: Time = migrate_at
    completed_at: Optional[Time] = None

    index = 0
    total = len(merged)
    while index < total:
        timestamp, _, source, _ = merged[index]
        bound = index + 1
        while (
            bound < total
            and bound - index < batch_size
            and merged[bound][0] == timestamp
            and merged[bound][2] == source
        ):
            bound += 1
        if t_split is None and timestamp >= migrate_at:
            # Arm the migration: Algorithm 1's split time, PN flavour.
            t_split = max(last_seen.values()) + global_window + 1 + EPSILON
            for split in splits.values():
                split.t_split = t_split
                split.migrating = True
            old_sink.accept_below = t_split
            new_sink.accept_above = t_split
        last_seen[source] = timestamp
        # Advance all inputs to the global clock before processing, so
        # expirations below ``timestamp`` are applied first (global
        # temporal processing order).
        for window_op in window_ops.values():
            window_op.process_heartbeat(timestamp, 0)
        window_op = window_ops[source]
        for position in range(index, bound):
            window_op.process(merged[position][3], 0)
        if t_split is not None and completed_at is None:
            if min(last_seen.values()) >= t_split:
                completed_at = timestamp
        index = bound
    for window_op in window_ops.values():
        window_op.process_heartbeat(MAX_TIME, 0)
    if t_split is None:
        raise RecoveryError(
            "the input ended before the migration could be triggered"
        )
    if completed_at is None:
        completed_at = max(last_seen.values())

    old_box.root.detach_sink(old_sink)
    new_box.root.detach_sink(new_sink)
    output = old_sink.accepted + new_sink.accepted
    report = PNMigrationReport(
        t_split=t_split,
        triggered_at=triggered_at,
        completed_at=completed_at,
        old_accepted=len(old_sink.accepted),
        new_accepted=len(new_sink.accepted),
        old_rejected=old_sink.rejected,
        new_rejected=new_sink.rejected,
    )
    return output, report


class _SplitAdapter(PNOperator):
    """Wraps a :class:`_PNSplit` behind the PNOperator input protocol."""

    def __init__(self, split: _PNSplit) -> None:
        super().__init__(arity=1, name="pn-split")
        self._split = split

    def _on_element(self, element: PNElement, port: int) -> None:
        self._split.process(element, port)

    def process_heartbeat(self, t: Time, port: int = 0) -> None:
        if t <= self._watermarks[port]:
            return
        self._watermarks[port] = t
        self._split.process_heartbeat(t, port)
        self._advance()
