"""Structured per-query decision events: the controller's audit trail.

Every consideration round of the autonomic controller ends in exactly one
outcome event (plus the leading ``considered``), and every migration it
starts later produces a ``completed`` event.  The log is the observable
record of the monitor → decide → migrate loop: operations can answer "why
did query X migrate at t?" and "why did query Y *not* migrate?" from it
alone.  Events are mirrored into the query's
:class:`~repro.engine.metrics.MetricsRecorder` so they land next to the
memory/cost/output series in one dump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine.metrics import MetricsRecorder
from ..temporal.time import Time

#: A round was due and was evaluated (always followed by an outcome event).
CONSIDERED = "considered"
#: Statistics below the warmup threshold — decision would be garbage.
SKIPPED_COLD = "skipped-cold"
#: Within the hysteresis window after the previous migration completed.
SKIPPED_COOLDOWN = "skipped-cooldown"
#: A migration is still in flight on this executor.
SKIPPED_IN_FLIGHT = "skipped-in-flight"
#: The query runs hash-partitioned across shard workers; in-place plan
#: migration is not defined there — re-deploy from a checkpoint instead.
SKIPPED_SHARDED = "skipped-sharded"
#: A better plan exists, but moving the current state would cost more than
#: the projected savings over the amortisation horizon.
SKIPPED_MIGRATION_COST = "skipped-migration-cost"
#: Evaluated and the current plan is (still) the right one.
KEPT = "kept"
#: A dynamic migration was started.
MIGRATED = "migrated"
#: A previously started migration finished; the new plan is installed.
COMPLETED = "completed"

#: Every kind the controller emits, in rough lifecycle order.
EVENT_KINDS = (
    CONSIDERED,
    SKIPPED_COLD,
    SKIPPED_COOLDOWN,
    SKIPPED_IN_FLIGHT,
    SKIPPED_MIGRATION_COST,
    SKIPPED_SHARDED,
    KEPT,
    MIGRATED,
    COMPLETED,
)


@dataclass(frozen=True)
class DecisionEvent:
    """One structured entry of a query's audit log."""

    at: Time
    query: str
    kind: str
    detail: Tuple[Tuple[str, object], ...] = ()

    def __getitem__(self, key: str) -> object:
        for name, value in self.detail:
            if name == key:
                return value
        raise KeyError(key)

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-serialisable view."""
        entry: Dict[str, object] = {
            "at": self.at,
            "query": self.query,
            "kind": self.kind,
        }
        entry.update(self.detail)
        return entry


class QueryEventLog:
    """Append-only event log of one registered query."""

    def __init__(self, query: str, recorder: Optional[MetricsRecorder] = None) -> None:
        self.query = query
        self.recorder = recorder
        self.events: List[DecisionEvent] = []

    def record(self, at: Time, kind: str, **detail: object) -> DecisionEvent:
        """Append one event; mirror it into the metrics recorder."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = DecisionEvent(
            at=at, query=self.query, kind=kind, detail=tuple(detail.items())
        )
        self.events.append(event)
        if self.recorder is not None:
            self.recorder.record_event(at, kind, query=self.query, **detail)
        return event

    def kinds(self) -> List[str]:
        """The sequence of event kinds, in recording order."""
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[DecisionEvent]:
        """All events of one kind, in recording order."""
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DecisionEvent]:
        return iter(self.events)

    def __repr__(self) -> str:
        return f"QueryEventLog({self.query!r}, {len(self.events)} events)"
