"""The shared ingestion hub: one physical stream feed, N subscribed queries.

Every source element enters the service exactly once and is fanned out to
each registered query that consumes the source; queries that do not (and
paused queries) receive the element's timestamp as a heartbeat instead, so
their watermarks, scheduled actions and in-flight migrations keep
advancing with global time.  The hub enforces global start-timestamp order
across *all* sources — the same discipline the single-query executor's
global-order scheduler provides — which is what makes cross-source
heartbeating sound: once an element at ``t`` is published, no source will
ever deliver before ``t``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from ..recovery.errors import RecoveryError
from ..temporal.batch import Batch
from ..temporal.element import StreamElement, element
from ..temporal.time import MIN_TIME, Time
from .registry import QueryRegistry


class IngestHub:
    """Fans one physical stream feed out to all subscribed executors."""

    def __init__(self, registry: QueryRegistry) -> None:
        self.registry = registry
        self.clock: Time = MIN_TIME
        self.published = 0
        #: Per-source count of elements published so far.  A checkpoint
        #: records these offsets; replay-after-restore skips exactly this
        #: many elements of each source's feed.
        self.offsets: Dict[str, int] = {}
        #: Invoked with the hub clock after every publish/advance; the
        #: autonomic controller hooks its consideration rounds in here.
        self.on_progress: Optional[Callable[[Time], None]] = None

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def publish(self, source: str, payload: object, at: Time) -> int:
        """Publish one timestamped tuple (Section 2.2: ``e @ t``)."""
        return self.push(source, element(payload, at, at + 1))

    def push(self, source: str, item: StreamElement) -> int:
        """Fan one stream element out; returns the number of deliveries."""
        if item.start < self.clock:
            raise ValueError(
                f"hub requires globally ordered input: {source!r} element at "
                f"{item.start} is behind the hub clock {self.clock}"
            )
        self.clock = item.start
        delivered = 0
        for handle in self.registry.handles():
            executor = handle.executor
            if handle.active and source in executor.sources:
                executor.push(source, item)
                delivered += 1
            else:
                # Not consuming this source (or paused): promise progress so
                # windows expire, actions fire and migrations complete.
                for name in executor.sources:
                    executor.advance(name, item.start)
        self.published += 1
        self.offsets[source] = self.offsets.get(source, 0) + 1
        self._progress()
        return delivered

    def publish_batch(self, source: str, payloads: Iterable[object], at: Time) -> int:
        """Publish several tuples sharing one timestamp as a single batch."""
        elements = [element(payload, at, at + 1) for payload in payloads]
        return self.push_batch(source, Batch(elements, source=source))

    def push_batch(self, source: str, batch: Batch) -> int:
        """Fan an ordered run of one source's elements out in one turn.

        Consumers receive the whole batch (taking the executors' amortised
        batch path); queries not consuming the source — and paused ones —
        are heartbeated once per batch, to the batch's trailing watermark,
        instead of once per element.  Returns the number of deliveries
        (consumers reached times elements delivered).
        """
        first = batch.first_start
        if first < self.clock:
            raise ValueError(
                f"hub requires globally ordered input: {source!r} element at "
                f"{first} is behind the hub clock {self.clock}"
            )
        self.clock = batch.watermark
        delivered = 0
        for handle in self.registry.handles():
            executor = handle.executor
            if handle.active and source in executor.sources:
                executor.push_batch(source, batch)
                delivered += len(batch)
            else:
                for name in executor.sources:
                    executor.advance(name, batch.watermark)
        self.published += len(batch)
        self.offsets[source] = self.offsets.get(source, 0) + len(batch)
        self._progress()
        return delivered

    def advance(self, t: Time) -> None:
        """Promise that no source will deliver before ``t`` (heartbeat)."""
        if t < self.clock:
            raise ValueError(f"cannot advance the hub backwards to {t}")
        self.clock = t
        for handle in self.registry.handles():
            for name in handle.executor.sources:
                handle.executor.advance(name, t)
        self._progress()

    def rewind(self, clock: Time, published: int, offsets: Dict[str, int]) -> None:
        """Fast-forward a *fresh* hub to a checkpoint's ingestion position.

        Only a hub that has never published may be rewound — rewinding a
        live hub would desynchronise it from its executors' watermarks —
        so restore builds a new service and calls this before replay.
        """
        if self.published or self.clock != MIN_TIME or self.offsets:
            raise RecoveryError(
                "can only rewind a fresh hub: this one has already published "
                f"{self.published} elements (clock {self.clock})"
            )
        self.clock = clock
        self.published = published
        self.offsets = dict(offsets)

    def finish(self) -> None:
        """End the session: drain every executor, complete all migrations."""
        for handle in self.registry.handles():
            handle.executor.finish()

    def _progress(self) -> None:
        if self.on_progress is not None:
            self.on_progress(self.clock)
