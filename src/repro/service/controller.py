"""The autonomic re-optimization controller: monitor → decide → migrate.

The controller closes the loop the paper's introduction sketches: the DSMS
continuously maintains runtime statistics, and "whenever the need for a
re-optimization is detected", replaces a stale plan via dynamic migration.
Per managed query it periodically runs one :class:`ReOptimizer` round,
tempered by the guards that make the loop safe to leave unattended:

* **warmup** — rounds are skipped while the statistics are cold (the
  re-optimizer's minimum-observation check);
* **in-flight guard** — a round never overlaps a running migration;
* **hysteresis/cooldown** — after a migration completes, further
  migrations are suppressed for a configurable span so plan flapping
  cannot oscillate state back and forth;
* **migration-cost awareness** — the decide step vetoes migrations whose
  projected savings do not amortise the state that must drain;
* **automatic strategy selection** — reference-point when both boxes are
  start-preserving, GenMig with coalesce otherwise, Parallel Track only
  ever on join-only plans (see :func:`repro.core.strategy.select_strategy`).

Every outcome lands in the query's :class:`~repro.service.events.
QueryEventLog` (mirrored into its metrics recorder), so the service's
migration activity is fully auditable per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..optimizer.cost import CostModel
from ..optimizer.optimizer import ReOptimizer
from ..plans.physical import PhysicalBuilder
from ..temporal.time import Time
from . import events as ev
from .registry import QueryRegistry, RegisteredQuery


@dataclass
class ControllerPolicy:
    """The policy knobs of the autonomic controller.

    Attributes:
        period: application time between consideration rounds per query.
        warmup_observations: minimum arrivals per source before decisions
            are trusted (rounds below it record ``skipped-cold``).
        cooldown: minimum application time between a completed migration
            and the next one on the same query (hysteresis).
        improvement_threshold: migrate only below this fraction of the
            current plan's cost.
        migration_cost_per_value: cost units per payload value of current
            state, charged against a candidate migration (0 disables).
        savings_horizon: application time over which the cost advantage
            must amortise the migration cost.
        strategy: ``"auto"`` (recommended), ``"coalesce"``,
            ``"reference-point"`` or ``"parallel-track"``; non-auto choices
            degrade to a sound strategy when the plan shape demands it.
        modelcheck: names of bounded model-check presets
            (:data:`repro.analysis.modelcheck.PRESETS`) run at every
            strategy selection; a failed check demotes the exercised
            strategy before the choice is made.  Empty (the default)
            skips dynamic certification.
        modelcheck_budget: schedule cap per preset (``None`` uses the
            checker's default).
    """

    period: Time = 500
    warmup_observations: int = 25
    cooldown: Time = 2000
    improvement_threshold: float = 0.8
    migration_cost_per_value: float = 0.01
    savings_horizon: float = 1000.0
    strategy: str = "auto"
    modelcheck: Tuple[str, ...] = ()
    modelcheck_budget: Optional[int] = None


class AutonomicController:
    """Runs periodic re-optimization rounds over all managed queries."""

    def __init__(
        self,
        registry: QueryRegistry,
        policy: Optional[ControllerPolicy] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.registry = registry
        self.policy = policy or ControllerPolicy()
        self.cost_model = cost_model
        self._optimizers: Dict[str, ReOptimizer] = {}
        self._due: Dict[str, Time] = {}

    # ------------------------------------------------------------------ #
    # Management
    # ------------------------------------------------------------------ #

    def manage(self, handle: RegisteredQuery) -> None:
        """Put one registered query under autonomic control."""
        policy = self.policy
        self._optimizers[handle.name] = ReOptimizer(
            builder=self.registry.builder,
            cost_model=self.cost_model,
            improvement_threshold=policy.improvement_threshold,
            min_observations=policy.warmup_observations,
            migration_cost_per_value=policy.migration_cost_per_value,
            savings_horizon=policy.savings_horizon,
        )
        handle.executor.on_migration_complete = (
            lambda report, h=handle: self._completed(h, report)
        )

    def release(self, handle: RegisteredQuery) -> None:
        """Stop managing a query (its executor keeps running)."""
        self._optimizers.pop(handle.name, None)
        self._due.pop(handle.name, None)
        handle.executor.on_migration_complete = None

    def decisions(self, name: str) -> list:
        """The raw :class:`OptimizationDecision` list of one query."""
        return list(self._optimizers[name].decisions)

    # ------------------------------------------------------------------ #
    # The periodic loop
    # ------------------------------------------------------------------ #

    def on_progress(self, now: Time) -> None:
        """Hub callback: run every consideration round that has come due."""
        for handle in self.registry.active():
            if handle.name not in self._optimizers:
                continue
            due = self._due.setdefault(handle.name, now + self.policy.period)
            if now < due:
                continue
            self._due[handle.name] = now + self.policy.period
            self._round(handle, now)

    def _round(self, handle: RegisteredQuery, now: Time) -> None:
        log = handle.events
        log.record(now, ev.CONSIDERED, plan=handle.plan.signature())
        executor = handle.executor
        if getattr(executor, "shard_count", 1) > 1:
            log.record(now, ev.SKIPPED_SHARDED, shards=executor.shard_count)
            return
        if executor.migration_active:
            log.record(now, ev.SKIPPED_IN_FLIGHT)
            return
        last = handle.last_migration_completed
        if last is not None and now - last < self.policy.cooldown:
            log.record(now, ev.SKIPPED_COOLDOWN, until=last + self.policy.cooldown)
            return
        optimizer = self._optimizers[handle.name]
        decision = optimizer.decide(handle.query, handle.plan, executor.statistics)
        if decision.reason == "cold-statistics":
            log.record(
                now,
                ev.SKIPPED_COLD,
                min_observations=self.policy.warmup_observations,
            )
            return
        if decision.reason == "migration-cost":
            log.record(
                now,
                ev.SKIPPED_MIGRATION_COST,
                migration_cost=decision.migration_cost,
                projected_savings=decision.projected_savings,
            )
            return
        if not decision.migrate:
            log.record(
                now,
                ev.KEPT,
                current_cost=decision.current_cost,
                best_cost=decision.best_cost,
                candidates=decision.candidates_considered,
            )
            return
        self._migrate(handle, decision, now)

    def _migrate(self, handle: RegisteredQuery, decision, now: Time) -> None:
        from ..core.strategy import select_strategy

        executor = handle.executor
        version = len(executor.migration_log) + 1
        new_box = self.registry.builder.build(
            decision.chosen, label=f"{handle.name}/{version}"
        )
        scenarios = None
        if self.policy.modelcheck:
            from ..analysis.modelcheck import build_scenario

            scenarios = [build_scenario(name) for name in self.policy.modelcheck]
        strategy = select_strategy(
            executor.box,
            new_box,
            prefer=self.policy.strategy,
            scenarios=scenarios,
            modelcheck_budget=self.policy.modelcheck_budget,
        )
        handle.pending_plan = decision.chosen
        verdict = strategy.selection_verdict
        handle.events.record(
            now,
            ev.MIGRATED,
            strategy=strategy.name,
            new_plan=decision.chosen.signature(),
            current_cost=decision.current_cost,
            best_cost=decision.best_cost,
            migration_cost=decision.migration_cost,
            projected_savings=decision.projected_savings,
            # The static analysis justifying the strategy choice: the two
            # boxes' migration profiles and the verifier's reasoning.
            profiles=sorted(verdict.profiles) if verdict is not None else None,
            justification=verdict.reason if verdict is not None else None,
            modelchecked=list(self.policy.modelcheck) or None,
        )
        executor.start_migration(new_box, strategy)

    def _completed(self, handle: RegisteredQuery, report) -> None:
        if handle.pending_plan is not None:
            handle.plan = handle.pending_plan
            handle.pending_plan = None
        handle.last_migration_completed = report.completed_at
        handle.events.record(
            report.completed_at,
            ev.COMPLETED,
            strategy=report.strategy,
            t_split=report.t_split,
            duration=report.duration,
            plan=handle.plan.signature(),
        )
