"""The continuous-query service layer: many queries, one stream feed.

This package turns the single-query building blocks (executor, optimizer,
migration strategies) into a long-running multi-query service:

* :class:`QueryRegistry` — registers queries from CQL text or logical
  plans, with a full register/pause/resume/deregister lifecycle, one
  online-driven executor per query;
* :class:`IngestHub` — fans every source element and heartbeat out to all
  subscribed executors, so N queries share one physical stream;
* :class:`AutonomicController` — periodically re-optimizes each query
  with warmup, cooldown, an in-flight guard, a migration-cost term and
  automatic strategy selection, recording every decision in a per-query
  :class:`QueryEventLog`;
* :class:`ContinuousQueryService` — the facade wiring the three together.

Quickstart::

    from repro import Catalog
    from repro.service import ContinuousQueryService

    service = ContinuousQueryService(catalog=Catalog({"bids": ("item", "price")}))
    q = service.register("expensive", "SELECT * FROM bids [RANGE 60] WHERE bids.price > 10")
    for t, price in enumerate([5, 50, 500]):
        service.publish("bids", ("pen", price), t)
    service.finish()
    print(q.results, q.events.kinds())
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..cql.translate import Catalog
from ..engine.metrics import MetricsRecorder
from ..optimizer.cost import CostModel
from ..plans.logical import Query
from ..plans.physical import PhysicalBuilder
from ..temporal.element import StreamElement
from ..temporal.time import Time
from .controller import AutonomicController, ControllerPolicy
from .events import (
    COMPLETED,
    CONSIDERED,
    EVENT_KINDS,
    KEPT,
    MIGRATED,
    SKIPPED_COLD,
    SKIPPED_COOLDOWN,
    SKIPPED_IN_FLIGHT,
    SKIPPED_MIGRATION_COST,
    SKIPPED_SHARDED,
    DecisionEvent,
    QueryEventLog,
)
from .ingest import IngestHub
from .registry import ACTIVE, PAUSED, STOPPED, QueryRegistry, RegisteredQuery


class ContinuousQueryService:
    """Registry + ingest hub + autonomic controller, wired together.

    One instance is one running DSMS: register queries, publish elements,
    and the controller re-optimizes stale plans behind your back — every
    decision auditable through each query's event log.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        policy: Optional[ControllerPolicy] = None,
        builder: Optional[PhysicalBuilder] = None,
        cost_model: Optional[CostModel] = None,
        default_window: Optional[Time] = None,
        time_scale: int = 1000,
    ) -> None:
        self.registry = QueryRegistry(
            catalog=catalog,
            builder=builder,
            default_window=default_window,
            time_scale=time_scale,
        )
        self.controller = AutonomicController(
            self.registry, policy=policy, cost_model=cost_model
        )
        self.hub = IngestHub(self.registry)
        self.hub.on_progress = self.controller.on_progress

    # ------------------------------------------------------------------ #
    # Query lifecycle
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        query: Union[str, Query],
        metrics: Optional[MetricsRecorder] = None,
        shards: int = 1,
        transport: Optional[object] = None,
    ) -> RegisteredQuery:
        """Register a query and place it under autonomic control.

        ``shards > 1`` deploys the query hash-partitioned across shard
        workers (the plan must be key-shardable); the controller then
        skips in-place re-optimization for it (``skipped-sharded``).
        """
        handle = self.registry.register(
            name, query, metrics=metrics, shards=shards, transport=transport
        )
        self.controller.manage(handle)
        return handle

    def pause(self, name: str) -> RegisteredQuery:
        return self.registry.pause(name)

    def resume(self, name: str) -> RegisteredQuery:
        return self.registry.resume(name)

    def deregister(self, name: str) -> RegisteredQuery:
        """Drain and remove a query; its handle stays readable."""
        handle = self.registry.get(name)
        handle = self.registry.deregister(name)
        self.controller.release(handle)
        return handle

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def publish(self, source: str, payload: object, at: Time) -> int:
        """Publish one timestamped tuple to every subscribed query."""
        return self.hub.publish(source, payload, at)

    def push(self, source: str, item: StreamElement) -> int:
        """Publish one ready-made stream element."""
        return self.hub.push(source, item)

    def advance(self, t: Time) -> None:
        """Heartbeat: promise no source delivers before ``t``."""
        self.hub.advance(t)

    def finish(self) -> None:
        """Drain all queries and complete in-flight migrations."""
        self.hub.finish()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def query(self, name: str) -> RegisteredQuery:
        return self.registry.get(name)

    def names(self) -> List[str]:
        return self.registry.names()

    def events(self, name: str) -> QueryEventLog:
        """The decision/migration audit log of one query."""
        return self.registry.get(name).events

    def results(self, name: str) -> List[StreamElement]:
        return self.registry.get(name).results


__all__ = [
    "ACTIVE",
    "AutonomicController",
    "COMPLETED",
    "CONSIDERED",
    "ContinuousQueryService",
    "ControllerPolicy",
    "DecisionEvent",
    "EVENT_KINDS",
    "IngestHub",
    "KEPT",
    "MIGRATED",
    "PAUSED",
    "QueryEventLog",
    "QueryRegistry",
    "RegisteredQuery",
    "SKIPPED_COLD",
    "SKIPPED_COOLDOWN",
    "SKIPPED_IN_FLIGHT",
    "SKIPPED_MIGRATION_COST",
    "SKIPPED_SHARDED",
    "STOPPED",
]
