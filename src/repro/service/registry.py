"""The multi-query registry: lifecycle of continuous queries in a service.

A DSMS hosts many long-running queries at once; the registry owns them.
Each registered query — given as CQL text (resolved against the service's
catalog) or as a ready-made :class:`~repro.plans.logical.Query` — is backed
by its own :class:`~repro.engine.executor.QueryExecutor` driven online
(``push``/``advance``, never ``run``), its own metrics recorder, collector
sink and decision event log.  The physical input streams are shared: the
:class:`~repro.service.ingest.IngestHub` fans elements out to every
subscribed executor.

Lifecycle::

    register ──► ACTIVE ◄──────► PAUSED
                    │    pause/resume
                    ▼ deregister
                 STOPPED   (executor drained, removed from the registry)

A paused query stops consuming elements but keeps receiving heartbeats, so
its operator state drains and its output stays snapshot-consistent with
what it *did* consume; elements published while paused are not replayed on
resume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..cql.translate import Catalog, compile_query
from ..engine.executor import QueryExecutor
from ..engine.metrics import MetricsRecorder
from ..plans.logical import LogicalPlan, Query
from ..plans.physical import PhysicalBuilder
from ..streams.sinks import CollectorSink
from ..streams.stream import PhysicalStream
from ..temporal.element import StreamElement
from ..temporal.time import Time
from .events import QueryEventLog

ACTIVE = "active"
PAUSED = "paused"
STOPPED = "stopped"


class RegisteredQuery:
    """One continuous query under service management (the registry handle)."""

    def __init__(
        self,
        name: str,
        query: Query,
        executor: QueryExecutor,
        sink: CollectorSink,
        metrics: MetricsRecorder,
    ) -> None:
        self.name = name
        self.query = query
        #: The currently installed logical plan; updated by the controller
        #: when a migration completes.
        self.plan: LogicalPlan = query.plan
        self.executor = executor
        self.sink = sink
        self.metrics = metrics
        self.events = QueryEventLog(name, recorder=metrics)
        self.state = ACTIVE
        #: The CQL text this query was registered with, when it was
        #: registered as text.  A checkpoint stores it so restore can
        #: recompile the identical logical plan; ``Query``-object
        #: registrations leave it ``None`` and restore needs the caller
        #: to re-supply the object.
        self.cql: Optional[str] = None
        #: The plan a currently in-flight migration is moving to.
        self.pending_plan: Optional[LogicalPlan] = None
        #: Application time the last migration completed (cooldown anchor).
        self.last_migration_completed: Optional[Time] = None
        #: Shard count this query runs under (1 = plain single-process
        #: executor; > 1 = hash-partitioned ``ShardedExecutor``).
        self.shards: int = 1

    @property
    def active(self) -> bool:
        return self.state == ACTIVE

    @property
    def sources(self) -> Tuple[str, ...]:
        """The input streams this query consumes."""
        return tuple(self.query.windows)

    @property
    def results(self) -> List[StreamElement]:
        """Everything the query has delivered so far."""
        return self.sink.elements

    @property
    def migrations(self) -> List[object]:
        """Completed migration reports, oldest first."""
        return list(self.executor.migration_log)

    def __repr__(self) -> str:
        return (
            f"RegisteredQuery({self.name!r}, state={self.state}, "
            f"plan={self.plan.signature()})"
        )


class QueryRegistry:
    """Registers queries and owns their executors.

    Args:
        catalog: stream schemas for CQL registration; optional when every
            query is registered as a ready-made :class:`Query`.
        builder: shared logical-to-physical compiler (also used by the
            controller for migration target boxes).
        default_window: window applied to CQL sources without an explicit
            window specification.
        time_scale: chronons per second in CQL window units.
        bucket_size: metrics bucket width for per-query recorders.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        builder: Optional[PhysicalBuilder] = None,
        default_window: Optional[Time] = None,
        time_scale: int = 1000,
        bucket_size: Time = 1000,
    ) -> None:
        self.catalog = catalog
        self.builder = builder or PhysicalBuilder()
        self.default_window = default_window
        self.time_scale = time_scale
        self.bucket_size = bucket_size
        self._queries: Dict[str, RegisteredQuery] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        query: Union[str, Query],
        metrics: Optional[MetricsRecorder] = None,
        shards: int = 1,
        transport: Optional[object] = None,
    ) -> RegisteredQuery:
        """Register a query under ``name`` and build its executor.

        With ``shards > 1`` the query runs hash-partitioned on a
        :class:`~repro.engine.sharded.ShardedExecutor` — the plan must be
        key-shardable (see :mod:`repro.analysis.sharding`), and the
        optional ``transport`` picks where the shard workers live
        (default: in-process).
        """
        if name in self._queries:
            raise ValueError(f"a query named {name!r} is already registered")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        cql_text: Optional[str] = None
        if isinstance(query, str):
            if self.catalog is None:
                raise ValueError("registering CQL text requires a catalog")
            cql_text = query
            query = compile_query(
                query,
                self.catalog,
                time_scale=self.time_scale,
                default_window=self.default_window,
            )
        recorder = metrics or MetricsRecorder(self.bucket_size)
        if shards > 1:
            from ..engine.sharded import ShardedExecutor

            executor: object = ShardedExecutor(
                query,
                shards,
                transport=transport,
                builder_config=self.builder.config(),
                metrics=recorder,
                bucket_size=self.bucket_size,
            )
        else:
            box = self.builder.build(query.plan, label=f"{name}/0")
            executor = QueryExecutor(
                {source: PhysicalStream(name=source) for source in query.windows},
                dict(query.windows),
                box,
                metrics=recorder,
            )
        sink = CollectorSink()
        executor.add_sink(sink)
        handle = RegisteredQuery(name, query, executor, sink, recorder)
        handle.cql = cql_text
        handle.shards = shards
        self._queries[name] = handle
        return handle

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def pause(self, name: str) -> RegisteredQuery:
        """Stop delivering elements to ``name`` (heartbeats continue)."""
        handle = self.get(name)
        if handle.state != ACTIVE:
            raise ValueError(f"query {name!r} is {handle.state}, cannot pause")
        handle.state = PAUSED
        return handle

    def resume(self, name: str) -> RegisteredQuery:
        """Resume element delivery to a paused query."""
        handle = self.get(name)
        if handle.state != PAUSED:
            raise ValueError(f"query {name!r} is {handle.state}, cannot resume")
        handle.state = ACTIVE
        return handle

    def deregister(self, name: str) -> RegisteredQuery:
        """Remove ``name`` from the service, draining its executor.

        Draining completes any in-flight migration and flushes all operator
        state, so ``handle.results`` is final afterwards.
        """
        handle = self.get(name)
        handle.executor.finish()
        handle.state = STOPPED
        del self._queries[name]
        return handle

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def get(self, name: str) -> RegisteredQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise KeyError(f"no query named {name!r} is registered") from None

    def names(self) -> List[str]:
        return list(self._queries)

    def handles(self) -> List[RegisteredQuery]:
        """All registered queries (active and paused), registration order."""
        return list(self._queries.values())

    def active(self) -> List[RegisteredQuery]:
        return [handle for handle in self._queries.values() if handle.active]

    def __contains__(self, name: str) -> bool:
        return name in self._queries

    def __len__(self) -> int:
        return len(self._queries)
