"""Partition-parallel execution: hash-sharded workers behind one router.

A key-shardable plan (see :mod:`repro.analysis.sharding`) partitions by a
single equivalence class of key columns: every keyed stateful operator
(hash join, grouped aggregate, duplicate elimination, difference) only
ever co-relates rows whose key values are equal.  Routing each raw input
element to ``crc32(repr(key)) % N`` therefore gives each of ``N``
shared-nothing workers a self-contained slice of the query: a worker runs
a *full copy* of the physical plan, built inside the worker from the
picklable logical query, and sees exactly the elements whose keys it
owns.

The router (:class:`ShardedExecutor`) preserves the executor's public
surface — ``push``/``push_batch``/``advance``/``finish``/``add_sink``/
``checkpoint_state``/``restore_checkpoint`` — and guarantees the merged
output is **byte-identical** to a single-process run of the same plan
over the same input.  The mechanism is a global action sequence:

* every router action (element, coalesced run, advance, finish) carries
  one monotonically increasing sequence number;
* single-shard actions pass their captured output through in sequence
  order — a cascade triggered by one element is wholly owned by the
  shard that processed it;
* broadcast actions (watermark advances, ``finish``) return one output
  list per shard, merged by a content key that reproduces the
  single-process staged-heap release order (operators canonicalise
  equal-start emission for exactly this purpose — see
  ``operators/base.py`` ``_stage_key``).

Two broadcast regimes follow from the plan classification:

* **eager** plans (joins, unions, stateless chains) release all output
  in-action: workers self-advance through their local global-heartbeat
  fan-out, and the router never broadcasts except for explicit
  ``advance`` calls and ``finish`` — both output-neutral or merged.
* **strict** plans (grouped aggregate / distinct / difference at the
  root) finalise output on watermark rises that must be *equalised*
  across shards: the router broadcasts an advance to every shard before
  the first element of each new distinct start timestamp, so
  finalisation happens at the broadcast (merged deterministically), and
  element commands stay pass-through.

Checkpoints capture per-shard executor state plus the router
configuration; :meth:`ShardedExecutor.restore_checkpoint` re-partitions
drained operator state by key, so a checkpoint taken under ``N`` shards
restores under ``M != N`` — including ``N = 1``: a plain single-process
:class:`~repro.engine.executor.QueryExecutor` checkpoint seeds a sharded
deployment directly.
"""

from __future__ import annotations

import heapq
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..recovery.errors import RecoveryError
from ..temporal.batch import Batch
from ..temporal.element import StreamElement
from ..temporal.time import MIN_TIME, Time
from .box import OutputGate
from .transport import LocalTransport, ShardChannel, Transport, TransportError


def shard_of(value: object, count: int) -> int:
    """The owning shard of one key value: ``crc32(repr(value)) % count``.

    ``repr`` makes the hash stable across processes and Python builds
    (unlike ``hash``, which is salted for strings), which checkpoints and
    cross-process routing both require.
    """
    return zlib.crc32(repr(value).encode("utf-8")) % count


class ShardRouter:
    """Pure routing policy: which shard owns a given raw input element."""

    def __init__(self, routing: Dict[str, int], shard_count: int) -> None:
        self.routing = dict(routing)
        self.shard_count = shard_count

    def shard_for(self, source: str, element: StreamElement) -> int:
        if self.shard_count == 1:
            return 0
        return shard_of(element.payload[self.routing[source]], self.shard_count)


class _CaptureSink:
    """Worker-side sink collecting the outputs of the current command."""

    def __init__(self, outputs: List[StreamElement]) -> None:
        self._outputs = outputs

    def process(self, element: StreamElement, port: int = 0) -> None:
        self._outputs.append(element)

    def process_heartbeat(self, t: Time, port: int = 0) -> None:
        pass


class ShardServer:
    """One shard: a full plan copy plus the command interpreter.

    Built entirely from the picklable ``bootstrap`` description, so the
    same class serves both transports: :class:`~repro.engine.transport.
    LocalTransport` constructs it in-process, ``ProcessTransport``'s
    worker entry point constructs it inside a spawned process.

    Command grammar (``seq`` is the router's global action sequence)::

        ("el",         seq, source, element)
        ("batch",      seq, source, elements, watermark, uniform)
        ("adv",        seq, source_or_None, t)   # None = all sources
        ("finish",     seq)
        ("checkpoint", seq)
        ("seed",       seq, state)
        ("stats",      seq)

    Every command yields one reply ``(seq, kind, payload)`` with ``kind``
    in ``{"out", "state", "stats", "err"}``; ``execute`` maps a message
    (list of commands) to the list of replies.
    """

    def __init__(self, bootstrap: Dict[str, Any], index: int) -> None:
        from ..plans.physical import PhysicalBuilder
        from ..streams.stream import PhysicalStream
        from .executor import QueryExecutor
        from .metrics import MetricsRecorder

        query = bootstrap["query"]
        builder = PhysicalBuilder(**bootstrap.get("builder", {}))
        box = builder.build(query.plan, label=f"shard{index}")
        self.index = index
        self.metrics = MetricsRecorder(bootstrap.get("bucket_size", 1000))
        self.executor = QueryExecutor(
            sources={name: PhysicalStream(name=name) for name in query.windows},
            windows=dict(query.windows),
            box=box,
            metrics=self.metrics,
            batch_size=bootstrap.get("batch_size", 64),
        )
        self._outputs: List[StreamElement] = []
        self.executor.add_sink(_CaptureSink(self._outputs))

    def _take(self) -> List[StreamElement]:
        out = self._outputs[:]
        del self._outputs[:]
        return out

    def execute(self, message: List[tuple]) -> List[tuple]:
        replies: List[tuple] = []
        for command in message:
            kind = command[0]
            seq = command[1]
            try:
                replies.append((seq,) + self._dispatch(kind, command))
            except Exception as exc:  # surfaced (and re-raised) router-side
                replies.append((seq, "err", f"{type(exc).__name__}: {exc}"))
        return replies

    def _dispatch(self, kind: str, command: tuple) -> Tuple[str, Any]:
        executor = self.executor
        if kind == "el":
            _, _, source, element = command
            executor.push(source, element)
            return ("out", self._take())
        if kind == "batch":
            _, _, source, elements, watermark, uniform = command
            executor.push_batch(
                source, Batch._trusted(list(elements), watermark, source, uniform)
            )
            return ("out", self._take())
        if kind == "adv":
            _, _, source, t = command
            if source is None:
                for name in executor.sources:
                    executor.advance(name, t)
            else:
                executor.advance(source, t)
            return ("out", self._take())
        if kind == "finish":
            executor.finish()
            return ("out", self._take())
        if kind == "checkpoint":
            return ("state", executor.checkpoint_state())
        if kind == "seed":
            executor.restore_checkpoint(command[2])
            return ("out", self._take())
        if kind == "stats":
            metrics = self.metrics.to_dict()
            metrics["meter"] = {
                "total": executor.meter.total,
                "by_category": dict(executor.meter.by_category),
            }
            return (
                "stats",
                {
                    "metrics": metrics,
                    "state_values": executor.state_value_count(),
                    "delivered": executor.gate.delivered,
                },
            )
        raise ValueError(f"unknown shard command {kind!r}")


class ShardedExecutor:
    """Hash-partitioned execution of one key-shardable continuous query.

    Duck-types the :class:`~repro.engine.executor.QueryExecutor` surface
    the service layer consumes (ingest hub, checkpointer, registry); the
    plan-migration machinery is intentionally absent — re-optimization of
    a sharded deployment restarts from a checkpoint instead
    (``migration_active`` is permanently ``False``).

    Args:
        query: the logical query (picklable; each worker rebuilds the
            physical plan from it).
        shards: worker count ``N >= 1``.
        transport: where workers live; default in-process
            :class:`~repro.engine.transport.LocalTransport`.
        builder_config: keyword arguments for the worker-side
            ``PhysicalBuilder`` (cost weights, ``force_nested_loops``,
            fusion/columnar switches).
        metrics: optional router-side recorder fed one output sample per
            delivered result (worker-side recorders are aggregated
            separately via ``shard_stats``).
        batch_size: worker executor batch size.
        bucket_size: worker metrics bucket size.
        pipeline_depth: router actions buffered before a transport flush;
            higher amortises IPC for process transports, ``1`` delivers
            outputs eagerly.
    """

    def __init__(
        self,
        query: Any,
        shards: int,
        transport: Optional[Transport] = None,
        builder_config: Optional[Dict[str, Any]] = None,
        metrics: Optional[Any] = None,
        batch_size: int = 64,
        bucket_size: Time = 1000,
        pipeline_depth: int = 16,
    ) -> None:
        from ..analysis.sharding import classify_sharding

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        plan = classify_sharding(query)
        if not plan.shardable:
            raise ValueError(f"query is not key-shardable: {plan.explain()}")
        self.query = query
        self.sharding = plan
        self.shard_count = shards
        self.windows: Dict[str, Time] = dict(query.windows)
        self.batch_size = batch_size
        self.metrics = metrics
        self.router = ShardRouter(plan.routing, shards)
        self._merge_key = _merge_key_for(query.plan)
        self._strict = plan.mode == "strict"

        self.transport = transport or LocalTransport()
        bootstrap: Dict[str, Any] = {
            "query": query,
            "builder": dict(builder_config or {}),
            "batch_size": batch_size,
            "bucket_size": bucket_size,
        }
        self.channels: List[ShardChannel] = self.transport.launch(shards, bootstrap)
        if len(self.channels) != shards:
            raise TransportError(
                f"transport launched {len(self.channels)} channels for {shards} shards"
            )

        # Executor-surface compatibility (ingest hub, controller, capture).
        self.sources: Dict[str, None] = {name: None for name in query.windows}
        self.gate = OutputGate(name="sharded-gate")
        self.migration_active = False
        self.migration_log: List[object] = []
        self.strategy = None
        #: Race-detector hook (:mod:`repro.analysis.races`): invoked once
        #: per emitted action with ``(seq, kind, elements)`` right before
        #: the elements reach the gate, so an instrumented run can audit
        #: the global emission order independently of gate counters.
        self.on_action_emitted: Optional[
            Callable[[int, str, List[StreamElement]], None]
        ] = None
        self.clock: Time = MIN_TIME
        self._finished = False
        self._closed = False

        # Action bookkeeping: per-channel command buffers, outstanding
        # reply-message counts, and the pending-action table the ordered
        # merge pump drains.
        self._buffers: List[List[tuple]] = [[] for _ in range(shards)]
        self._buffered = 0
        self._outstanding = [0] * shards
        self._pending: Dict[int, Dict[str, Any]] = {}
        self._results: Dict[int, Any] = {}
        self._next_seq = 0
        self._next_emit = 0
        self._pipeline_depth = pipeline_depth
        # Highest element start for which strict mode has broadcast the
        # equalising advance; None until the first element.
        self._equalized: Optional[Time] = None

        if metrics is not None:
            self.gate.on_delivery = lambda element: metrics.record_output(self.clock)

    # ------------------------------------------------------------------ #
    # Command plumbing
    # ------------------------------------------------------------------ #

    def _single(self, shard: int, command_tail: tuple, kind: str) -> int:
        seq = self._next_seq
        self._next_seq += 1
        self._buffers[shard].append((command_tail[0], seq) + command_tail[1:])
        self._buffered += 1
        self._pending[seq] = {"parts": None, "shard": shard, "need": 1, "kind": kind}
        return seq

    def _broadcast(self, command_tail: tuple, kind: str) -> int:
        seq = self._next_seq
        self._next_seq += 1
        command = (command_tail[0], seq) + command_tail[1:]
        for buffer in self._buffers:
            buffer.append(command)
        self._buffered += self.shard_count
        self._pending[seq] = {
            "parts": [None] * self.shard_count,
            "shard": None,
            "need": self.shard_count,
            "kind": kind,
        }
        return seq

    def _flush(self) -> None:
        for index, buffer in enumerate(self._buffers):
            if buffer:
                self.channels[index].send(buffer)
                self._outstanding[index] += 1
                self._buffers[index] = []
        self._buffered = 0

    def _maybe_flush(self) -> None:
        if self._buffered >= self._pipeline_depth:
            self._flush()
        self._collect(block=False)

    def _collect(self, block: bool) -> None:
        """Absorb arrived replies; with ``block``, wait until none remain."""
        for index, channel in enumerate(self.channels):
            for message in channel.poll():
                self._absorb(index, message)
        if block:
            while True:
                waiting = [i for i, n in enumerate(self._outstanding) if n]
                if not waiting:
                    break
                for index in waiting:
                    self._absorb(index, self.channels[index].recv(timeout=120.0))
        self._pump()

    def _absorb(self, shard: int, message: List[tuple]) -> None:
        self._outstanding[shard] -= 1
        for seq, kind, payload in message:
            if kind == "err":
                raise TransportError(f"shard {shard} failed at action {seq}: {payload}")
            record = self._pending[seq]
            if record["parts"] is None:
                record["payload"] = payload
            else:
                record["parts"][shard] = payload
            record["need"] -= 1

    def _pump(self) -> None:
        """Emit completed actions in global sequence order."""
        while True:
            record = self._pending.get(self._next_emit)
            if record is None or record["need"]:
                return
            seq = self._next_emit
            del self._pending[seq]
            self._next_emit = seq + 1
            if record["kind"] == "out":
                if record["parts"] is None:
                    outputs: Iterable[StreamElement] = record["payload"]
                else:
                    outputs = heapq.merge(*record["parts"], key=self._merge_key)
                if self.on_action_emitted is not None:
                    outputs = list(outputs)
                    self.on_action_emitted(seq, "out", outputs)
                deliver = self.gate.process
                for element in outputs:
                    deliver(element)
            else:  # "state" | "stats": collected for the barrier caller
                self._results[seq] = (
                    record["payload"] if record["parts"] is None else record["parts"]
                )

    def _barrier(self) -> None:
        self._flush()
        self._collect(block=True)

    # ------------------------------------------------------------------ #
    # Ingest surface
    # ------------------------------------------------------------------ #

    def _check_live(self, source: str) -> None:
        if self._finished:
            raise RecoveryError("executor already finished")
        if source not in self.windows:
            raise KeyError(f"unknown source {source!r}")

    def _equalize(self, start: Time) -> None:
        """Strict mode: broadcast-advance all shards to ``start`` before
        the first element of each new distinct start, so watermark-driven
        finalisation happens at the (merged) broadcast on every shard."""
        if self._equalized is None or start > self._equalized:
            self._broadcast(("adv", None, start), "out")
            self._equalized = start

    def push(self, source: str, element: StreamElement) -> None:
        """Route one element to its owning shard (global start order)."""
        self._check_live(source)
        if element.start < self.clock:
            raise ValueError(
                f"sharded executor received {source!r} element at "
                f"{element.start} behind the clock {self.clock}"
            )
        if self._strict:
            self._equalize(element.start)
        self.clock = max(self.clock, element.start)
        shard = self.router.shard_for(source, element)
        self._single(shard, ("el", source, element), "out")
        self._maybe_flush()

    def push_batch(self, source: str, batch: Batch) -> None:
        """Route an ordered run, coalescing same-shard stretches.

        Consecutive elements owned by the same shard travel as one
        worker-side batch (taking the amortised plan path); in strict
        mode a coalesced run never crosses a start-group boundary, since
        the equalising broadcast must precede each new start.
        """
        self._check_live(source)
        elements = batch.elements
        if not elements:
            if batch.watermark > self.clock:
                self.advance(source, batch.watermark)
            return
        if elements[0].start < self.clock:
            raise ValueError(
                f"sharded executor received {source!r} element at "
                f"{elements[0].start} behind the clock {self.clock}"
            )
        shard_for = self.router.shard_for
        index, n = 0, len(elements)
        while index < n:
            element = elements[index]
            start = element.start
            if self._strict:
                self._equalize(start)
            self.clock = max(self.clock, start)
            shard = shard_for(source, element)
            stop = index + 1
            while stop < n and shard_for(source, elements[stop]) == shard:
                if self._strict and elements[stop].start != start:
                    break
                stop += 1
            run = elements[index:stop]
            if len(run) == 1:
                self._single(shard, ("el", source, element), "out")
            else:
                last_start = run[-1].start
                self._single(
                    shard,
                    ("batch", source, list(run), last_start, start == last_start),
                    "out",
                )
                self.clock = max(self.clock, last_start)
            index = stop
        if batch.watermark > elements[-1].start:
            self.advance(source, batch.watermark)
        else:
            self._maybe_flush()

    def advance(self, source: str, t: Time) -> None:
        """Promise all shards that ``source`` will not deliver before ``t``."""
        if source not in self.windows:
            raise KeyError(f"unknown source {source!r}")
        self.clock = max(self.clock, t)
        self._broadcast(("adv", source, t), "out")
        self._maybe_flush()

    def finish(self) -> None:
        """Drain every shard and merge the final outputs."""
        if self._finished:
            return
        self._broadcast(("finish",), "out")
        self._barrier()
        self._finished = True
        if self._pending:
            raise TransportError(
                f"{len(self._pending)} shard action(s) unaccounted for at finish"
            )

    def add_sink(self, sink: object) -> None:
        """Attach a sink to the merged query output."""
        self.gate.add_sink(sink)

    def close(self) -> None:
        """Tear down channels and the transport; idempotent."""
        if self._closed:
            return
        self._closed = True
        for channel in self.channels:
            channel.close()
        self.transport.shutdown()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard worker statistics (metrics dict, meter, state size)."""
        seq = self._broadcast(("stats",), "stats")
        self._barrier()
        return self._results.pop(seq)

    def state_value_count(self) -> int:
        """Payload values held across all shards' live state."""
        return sum(s["state_values"] for s in self.shard_stats())

    def metrics_summary(self) -> Dict[str, Any]:
        """Worker recorders aggregated into one single-process-comparable
        metrics dict (see :meth:`MetricsRecorder.aggregate`)."""
        from .metrics import MetricsRecorder

        return MetricsRecorder.aggregate(
            [s["metrics"] for s in self.shard_stats()]
        )

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def checkpoint_state(self) -> dict:
        """Capture router configuration plus per-shard executor state.

        The shards are first equalised with an output-neutral advance to
        the router clock, so every per-shard record sits at the same
        temporal cut; differences between records are then confined to
        keyed state, staged output and meter charges.
        """
        if self._finished:
            raise RecoveryError("cannot checkpoint a finished executor")
        self._barrier()
        if self.clock != MIN_TIME:
            self._broadcast(("adv", None, self.clock), "out")
            if self._strict and (
                self._equalized is None or self.clock > self._equalized
            ):
                self._equalized = self.clock
        seq = self._broadcast(("checkpoint",), "state")
        self._barrier()
        shards = self._results.pop(seq)
        return {
            "sharded": True,
            "shard_count": self.shard_count,
            "mode": self.sharding.mode,
            "routing": dict(self.sharding.routing),
            "clock": self.clock,
            "gate": self.gate.progress_state(),
            "shards": shards,
        }

    def restore_checkpoint(self, state: dict) -> None:
        """Seed fresh shards from a checkpoint taken under any shard count.

        Accepts both this class's :meth:`checkpoint_state` payload and a
        plain single-process ``QueryExecutor.checkpoint_state`` payload
        (treated as a one-shard deployment).  Keyed operator state is
        re-partitioned row-by-row through the shard keys recorded by the
        sharding analysis, so ``M != N`` restores are exact.
        """
        if self._next_seq or self._finished or self.gate.delivered:
            raise RecoveryError("can only restore into a fresh sharded executor")
        if state.get("sharded"):
            old_states = state["shards"]
        else:
            old_states = [state]
        seeds = _repartition(
            old_states,
            self.shard_count,
            self.sharding.state_keys,
            self.sharding.root_key,
        )
        for shard, seed in enumerate(seeds):
            self._single(shard, ("seed", seed), "out")
        self._barrier()
        self.clock = state["clock"]
        if self._strict and self.clock != MIN_TIME:
            self._equalized = self.clock
        self.gate.restore_progress(state["gate"])

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _merge_key_for(plan: Any) -> Callable[[StreamElement], tuple]:
    """The content key merging per-shard broadcast outputs.

    Must agree with the single-process staged-heap release order for
    equal-start results of the root operator.  All three strict-mode
    emitters canonicalise on exactly ``(start, end, repr(payload))``:
    aggregate's ``_merge_adjacent`` and difference's finalisation sort
    staged results by it, duplicate elimination's ``_stage_key`` ties on
    ``(end, repr(payload))``.  It is also a safe default for eager
    plans, whose broadcasts are output-neutral anyway.
    """
    return lambda e: (e.start, e.end, repr(e.payload))


def _repartition(
    old_states: List[dict],
    count: int,
    state_keys: Dict[str, Tuple[Optional[int], ...]],
    root_key: Optional[int],
) -> List[dict]:
    """Re-partition per-shard executor checkpoints onto ``count`` shards.

    The first old record is the template for everything the equalising
    pre-checkpoint advance made identical across shards (watermarks,
    progress marks, gate counters); keyed rows — drained operator state,
    and staged output of the root — are concatenated across old shards
    (preserving per-key relative order, since each key lived on exactly
    one shard) and re-dealt by ``crc32 % count``.  Meter totals are
    summed onto new shard 0 so fleet-wide accounting is conserved.
    """
    template = old_states[0]
    operators = template["operators"]
    for old in old_states[1:]:
        if len(old["operators"]) != len(operators) or any(
            a["name"] != b["name"] or a["type"] != b["type"]
            for a, b in zip(old["operators"], operators)
        ):
            raise RecoveryError("sharded checkpoint records disagree on the plan")

    seeds: List[dict] = []
    for shard in range(count):
        meter = (
            {
                "total": sum(s["meter"]["total"] for s in old_states),
                "by_category": _sum_categories(
                    [s["meter"]["by_category"] for s in old_states]
                ),
            }
            if shard == 0
            else {"total": 0, "by_category": {}}
        )
        seeds.append(
            {
                "clock": template["clock"],
                "source_watermarks": dict(template["source_watermarks"]),
                "source_max_ends": {
                    name: max(s["source_max_ends"][name] for s in old_states)
                    for name in template["source_max_ends"]
                },
                "source_seen": {
                    name: any(s["source_seen"][name] for s in old_states)
                    for name in template["source_seen"]
                },
                "last_bucket": template["last_bucket"],
                "meter": meter,
                "gate": dict(template["gate"]),
                "operators": [],
            }
        )

    for position, record in enumerate(operators):
        name = record["name"]
        peers = [s["operators"][position] for s in old_states]
        for peer in peers[1:]:
            if peer["progress"]["watermarks"] != record["progress"]["watermarks"]:
                raise RecoveryError(
                    f"operator {name!r}: shard watermarks diverge — the "
                    "checkpoint was not taken at an equalised cut"
                )
        staged = _repartition_staged(name, record["type"], peers, count, root_key)
        ports = _repartition_ports(name, peers, count, state_keys.get(name))
        extras = _repartition_extras(name, peers, count, state_keys.get(name))
        for shard in range(count):
            progress = dict(record["progress"])
            progress["staged"] = staged[shard]
            new_record: Dict[str, Any] = {
                "type": record["type"],
                "name": name,
                "progress": progress,
                "ports": None if ports is None else ports[shard],
            }
            if extras is not None:
                new_record["extras"] = extras[shard]
            seeds[shard]["operators"].append(new_record)
    return seeds


def _sum_categories(parts: List[Dict[str, int]]) -> Dict[str, int]:
    total: Dict[str, int] = {}
    for part in parts:
        for category, charge in part.items():
            total[category] = total.get(category, 0) + charge
    return total


def _repartition_staged(
    name: str,
    type_name: str,
    peers: List[dict],
    count: int,
    root_key: Optional[int],
) -> List[List[StreamElement]]:
    """Re-deal staged-but-unreleased output rows (root operator only).

    After the equalising advance, only duplicate elimination can hold
    deferred staged output (remainders pushed ahead of the watermark by
    a covered prefix); its staged lists are content-ordered, so a k-way
    content merge reproduces the global release order and each row is
    re-dealt by its root key.
    """
    lists = [peer["progress"]["staged"] for peer in peers]
    if not any(lists):
        return [[] for _ in range(count)]
    if type_name != "DuplicateElimination" or root_key is None:
        raise RecoveryError(
            f"operator {name!r} holds staged output that cannot be "
            "re-partitioned (no shard key for staged rows)"
        )
    merged = heapq.merge(*lists, key=lambda e: (e.start, e.end, repr(e.payload)))
    out: List[List[StreamElement]] = [[] for _ in range(count)]
    for element in merged:
        out[shard_of(element.payload[root_key], count)].append(element)
    return out


def _repartition_ports(
    name: str,
    peers: List[dict],
    count: int,
    keys: Optional[Tuple[Optional[int], ...]],
) -> Optional[List[List[List[StreamElement]]]]:
    """Re-deal drained operator state rows by the per-port shard keys."""
    template_ports = peers[0]["ports"]
    if template_ports is None:
        if any(peer["ports"] is not None for peer in peers[1:]):
            raise RecoveryError(f"operator {name!r}: shard drain hooks disagree")
        return None
    arity = len(template_ports)
    out: List[List[List[StreamElement]]] = [
        [[] for _ in range(arity)] for _ in range(count)
    ]
    for port in range(arity):
        rows = [row for peer in peers for row in peer["ports"][port]]
        if not rows:
            continue
        if keys is None or keys[port] is None:
            raise RecoveryError(
                f"operator {name!r} port {port} holds keyed state but the "
                "sharding analysis recorded no shard key for it"
            )
        key_index = keys[port]
        for row in rows:
            out[shard_of(row.payload[key_index], count)][port].append(row)
    return out


def _repartition_extras(
    name: str,
    peers: List[dict],
    count: int,
    keys: Optional[Tuple[Optional[int], ...]],
) -> Optional[List[dict]]:
    """Re-deal checkpoint extras (the difference payload-order index)."""
    if "extras" not in peers[0]:
        return None
    extras = [peer.get("extras") or {} for peer in peers]
    if all(set(extra) <= {"payload_order"} for extra in extras):
        if keys is None or keys[0] is None:
            # No shard key: only valid when the payload orders are empty.
            if any(extra.get("payload_order") for extra in extras):
                raise RecoveryError(
                    f"operator {name!r}: cannot re-partition payload order "
                    "without a shard key"
                )
            return [{"payload_order": []} for _ in range(count)]
        key_index = keys[0]
        seen: Dict[object, None] = {}
        for extra in extras:
            for payload in extra.get("payload_order", ()):
                seen.setdefault(payload, None)
        out: List[dict] = [{"payload_order": []} for _ in range(count)]
        for payload in seen:
            out[shard_of(payload[key_index], count)]["payload_order"].append(payload)
        return out
    raise RecoveryError(
        f"operator {name!r} carries checkpoint extras this sharded restore "
        "does not understand"
    )
