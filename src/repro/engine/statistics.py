"""Runtime statistics: stream rates and operator selectivities.

A DSMS keeps "a plethora of runtime statistics, e.g., on stream rates and
selectivities" (Section 1) to let the optimizer spot stale plans.  The
collectors here are deliberately simple — exponentially decayed counters —
but they provide exactly the inputs the cost model needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..temporal.time import Time


class RateEstimator:
    """Exponentially decayed arrival-rate estimate (elements per time unit)."""

    def __init__(self, half_life: Time = 5000) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        self.half_life = half_life
        self._weight = 0.0
        self._last_time: Optional[Time] = None
        self.count = 0

    def observe(self, t: Time) -> None:
        """Record one arrival at application time ``t``."""
        self.count += 1
        if self._last_time is not None and t > self._last_time:
            decay = 0.5 ** (float(t - self._last_time) / float(self.half_life))
            self._weight *= decay
        self._weight += 1.0
        if self._last_time is None or t > self._last_time:
            self._last_time = t

    @property
    def rate(self) -> float:
        """Estimated arrivals per time unit (0.0 before any observation)."""
        if self._last_time is None or self._weight <= 1.0:
            return 0.0
        # The decayed weight corresponds to roughly 1.44 * half_life worth
        # of recent arrivals.
        effective_window = 1.443 * float(self.half_life)
        return self._weight / effective_window


class SelectivityEstimator:
    """Observed output/input ratio of a predicate or join."""

    def __init__(self, prior: float = 0.1, prior_weight: int = 10) -> None:
        if not 0.0 <= prior <= 1.0:
            raise ValueError(f"prior must be in [0, 1], got {prior}")
        self._tested = prior_weight
        self._matched = prior * prior_weight

    def observe(self, tested: int, matched: int) -> None:
        """Record ``tested`` candidate evaluations with ``matched`` hits."""
        if matched > tested:
            raise ValueError(f"matched {matched} exceeds tested {tested}")
        self._tested += tested
        self._matched += matched

    @property
    def selectivity(self) -> float:
        """Current estimate in ``[0, 1]``."""
        if self._tested == 0:
            return 0.0
        return self._matched / self._tested


class StatisticsCatalog:
    """Named registry of rate and selectivity estimators for one query."""

    def __init__(self) -> None:
        self.rates: Dict[str, RateEstimator] = {}
        self.selectivities: Dict[str, SelectivityEstimator] = {}

    def rate_of(self, source: str) -> RateEstimator:
        """Get or create the rate estimator of a source."""
        estimator = self.rates.get(source)
        if estimator is None:
            estimator = RateEstimator()
            self.rates[source] = estimator
        return estimator

    def selectivity_of(self, key: str) -> SelectivityEstimator:
        """Get or create the selectivity estimator of a predicate/join."""
        estimator = self.selectivities.get(key)
        if estimator is None:
            estimator = SelectivityEstimator()
            self.selectivities[key] = estimator
        return estimator

    def ready(
        self,
        sources: Optional[Iterable[str]] = None,
        min_observations: int = 2,
    ) -> bool:
        """Whether the rate estimators have warmed up enough to be trusted.

        ``RateEstimator.rate`` is 0.0 until the second observation, so cost
        estimates built from a cold catalog compare garbage against garbage.
        Callers deciding plan migrations (``ReOptimizer.decide``, the
        autonomic controller) must not act before every source named in
        ``sources`` (default: every registered source) has at least
        ``min_observations`` arrivals on record.
        """
        names = list(sources) if sources is not None else list(self.rates)
        if not names:
            return False
        for name in names:
            estimator = self.rates.get(name)
            if estimator is None or estimator.count < min_observations:
                return False
        return True

    def snapshot(self) -> Dict[str, float]:
        """A flat view of all current estimates, for logging and tests."""
        view: Dict[str, float] = {}
        for name, estimator in self.rates.items():
            view[f"rate:{name}"] = estimator.rate
        for name, estimator in self.selectivities.items():
            view[f"sel:{name}"] = estimator.selectivity
        return view
