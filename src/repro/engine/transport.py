"""Pluggable transport: where the executor's queues and shard workers live.

The executor historically hard-wired two assumptions: source elements sit
in in-process :class:`~repro.engine.queues.SourceQueue` objects, and every
operator runs in the calling thread.  This module turns both into a
*transport* decision, so a shard boundary is just a different queue
implementation:

* :class:`Transport` — the abstraction.  ``source_queue`` supplies the
  queues ``QueryExecutor.run`` drains; ``launch`` starts shard workers and
  returns one :class:`ShardChannel` per shard for the
  :class:`~repro.engine.sharded.ShardedExecutor` router.
* :class:`LocalTransport` — the zero-overhead default: plain in-process
  queues, and shard "workers" that are ordinary objects called
  synchronously.  Single-process behaviour is byte-identical to the
  pre-transport engine.
* :class:`ProcessTransport` — shared-nothing ``multiprocessing`` workers
  (spawn context, so it is fork-safety- and Windows-clean), one duplex
  pipe per shard, with a reader thread per channel draining replies so a
  full pipe buffer can never deadlock the router against a worker that is
  itself blocked sending.

This is the **only** module in the project allowed to import
``multiprocessing`` or ``threading`` (lint rule RLB007): operators, plans
and service code stay transport-agnostic, which is what lets one worker
process rebuild and run any plan from its picklable logical form.

Channel protocol
----------------

``send`` ships one *message*: a list of router commands (see
``engine/sharded.py`` for the command grammar).  The worker answers every
message with exactly one reply message: the list of per-command replies.
``poll`` returns already-arrived reply messages without blocking;
``recv`` blocks for the next one.  The router counts outstanding messages
per channel, so "all replies in" is a local bookkeeping fact, not a
transport feature.
"""

from __future__ import annotations

import queue as _queue
import threading
from typing import Any, Dict, Iterable, List, Optional

from ..temporal.element import StreamElement
from .queues import SourceQueue


class TransportError(RuntimeError):
    """A shard worker died or a channel broke mid-conversation."""


class ShardChannel:
    """One duplex command/reply conversation with one shard worker."""

    def send(self, message: List[tuple]) -> None:
        """Ship one list of commands to the worker."""
        raise NotImplementedError

    def poll(self) -> List[List[tuple]]:
        """Return all reply messages that have already arrived (no block)."""
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> List[tuple]:
        """Block for the next reply message.

        Raises :class:`TransportError` when the worker is gone or no reply
        arrives within ``timeout`` seconds.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Tear the conversation down; idempotent."""
        raise NotImplementedError


class Transport:
    """Where queues live and how shard workers are reached."""

    def source_queue(self, name: str, elements: Iterable[StreamElement] = ()) -> SourceQueue:
        """Build the queue ``QueryExecutor.run`` drains for ``name``.

        The default is the plain in-process queue; a distributed transport
        could hand back a proxy draining a remote partition instead.
        """
        return SourceQueue(name, elements)

    def launch(self, count: int, bootstrap: Dict[str, Any]) -> List[ShardChannel]:
        """Start ``count`` shard workers; return one channel per shard.

        ``bootstrap`` is a picklable description (logical query, builder
        configuration, batch size) from which each worker constructs its
        own executor — shared-nothing by construction.
        """
        raise NotImplementedError(f"{type(self).__name__} cannot launch shard workers")

    def shutdown(self) -> None:
        """Release transport-wide resources; idempotent."""


class LocalTransport(Transport):
    """In-process transport: synchronous calls, zero IPC, the default."""

    def launch(self, count: int, bootstrap: Dict[str, Any]) -> List[ShardChannel]:
        from .sharded import ShardServer

        return [
            _LocalChannel(ShardServer(bootstrap, index)) for index in range(count)
        ]


class _LocalChannel(ShardChannel):
    """Calls the shard server directly; replies are available immediately."""

    def __init__(self, server: Any) -> None:
        self._server = server
        self._replies: List[List[tuple]] = []
        self._closed = False

    def send(self, message: List[tuple]) -> None:
        if self._closed:
            raise TransportError("channel is closed")
        self._replies.append(self._server.execute(message))

    def poll(self) -> List[List[tuple]]:
        out, self._replies = self._replies, []
        return out

    def recv(self, timeout: Optional[float] = None) -> List[tuple]:
        if not self._replies:
            raise TransportError("no reply pending on a synchronous channel")
        return self._replies.pop(0)

    def close(self) -> None:
        self._closed = True


class ProcessTransport(Transport):
    """Shared-nothing worker processes behind duplex pipes (spawn-safe)."""

    def __init__(self, start_method: str = "spawn") -> None:
        self._start_method = start_method
        self._channels: List[_ProcessChannel] = []

    def launch(self, count: int, bootstrap: Dict[str, Any]) -> List[ShardChannel]:
        import multiprocessing

        context = multiprocessing.get_context(self._start_method)
        channels: List[ShardChannel] = []
        for index in range(count):
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(
                target=_shard_worker_main,
                args=(child_end, bootstrap, index),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_end.close()
            channel = _ProcessChannel(parent_end, process)
            self._channels.append(channel)
            channels.append(channel)
        return channels

    def shutdown(self) -> None:
        for channel in self._channels:
            channel.close()
        self._channels = []


def _shard_worker_main(connection: Any, bootstrap: Dict[str, Any], index: int) -> None:
    """Worker process entry point: build the shard, serve commands.

    Module-level so the spawn start method can pickle it by reference;
    everything the worker needs arrives in the picklable ``bootstrap``.
    A ``None`` message (or a closed pipe) ends the loop.
    """
    from .sharded import ShardServer

    server = ShardServer(bootstrap, index)
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        connection.send(server.execute(message))
    try:
        connection.close()
    except OSError:
        pass


class _ProcessChannel(ShardChannel):
    """Pipe to a worker process, with a reader thread draining replies.

    The thread exists for deadlock-freedom, not parallelism: if the router
    kept writing while the worker blocked writing a large reply into a
    full pipe buffer, both sides would wedge.  Draining replies off-thread
    into an unbounded queue guarantees the worker's writes always
    complete.
    """

    def __init__(self, connection: Any, process: Any) -> None:
        self._connection = connection
        self._process = process
        self._replies: "_queue.SimpleQueue[List[tuple]]" = _queue.SimpleQueue()
        self._closed = False
        self._reader = threading.Thread(
            target=self._drain, name=f"{process.name}-reader", daemon=True
        )
        self._reader.start()

    def _drain(self) -> None:
        try:
            while True:
                self._replies.put(self._connection.recv())
        except (EOFError, OSError):
            pass

    def send(self, message: List[tuple]) -> None:
        if self._closed:
            raise TransportError("channel is closed")
        try:
            self._connection.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise TransportError(
                f"shard worker {self._process.name} is gone: {exc}"
            ) from exc

    def poll(self) -> List[List[tuple]]:
        out: List[List[tuple]] = []
        while True:
            try:
                out.append(self._replies.get_nowait())
            except _queue.Empty:
                return out

    def recv(self, timeout: Optional[float] = None) -> List[tuple]:
        try:
            return self._replies.get(timeout=timeout)
        except _queue.Empty:
            alive = self._process.is_alive()
            raise TransportError(
                f"no reply from {self._process.name} within {timeout}s "
                f"(worker {'alive' if alive else 'dead'})"
            ) from None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._connection.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5)
        try:
            self._connection.close()
        except OSError:
            pass
