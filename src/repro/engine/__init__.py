"""Query engine: boxes, routers, schedulers, the executor, metrics."""

from .box import Box, InputPort, OutputGate, Router
from .compose import MaterializedStream, materialize
from .executor import MigrationError, QueryExecutor
from .metrics import MetricsRecorder, MetricsSeries
from .queues import SourceQueue
from .scheduler import GlobalOrderScheduler, RoundRobinScheduler, Scheduler
from .sharded import ShardedExecutor, ShardRouter, ShardServer, shard_of
from .statistics import RateEstimator, SelectivityEstimator, StatisticsCatalog
from .transport import (
    LocalTransport,
    ProcessTransport,
    ShardChannel,
    Transport,
    TransportError,
)

__all__ = [
    "Box",
    "MaterializedStream",
    "GlobalOrderScheduler",
    "InputPort",
    "LocalTransport",
    "MetricsRecorder",
    "MetricsSeries",
    "MigrationError",
    "OutputGate",
    "ProcessTransport",
    "QueryExecutor",
    "RateEstimator",
    "RoundRobinScheduler",
    "Scheduler",
    "SelectivityEstimator",
    "ShardChannel",
    "ShardRouter",
    "ShardServer",
    "ShardedExecutor",
    "SourceQueue",
    "StatisticsCatalog",
    "Transport",
    "TransportError",
    "materialize",
    "shard_of",
]
