"""Query engine: boxes, routers, schedulers, the executor, metrics."""

from .box import Box, InputPort, OutputGate, Router
from .compose import MaterializedStream, materialize
from .executor import MigrationError, QueryExecutor
from .metrics import MetricsRecorder, MetricsSeries
from .queues import SourceQueue
from .scheduler import GlobalOrderScheduler, RoundRobinScheduler, Scheduler
from .statistics import RateEstimator, SelectivityEstimator, StatisticsCatalog

__all__ = [
    "Box",
    "MaterializedStream",
    "GlobalOrderScheduler",
    "InputPort",
    "MetricsRecorder",
    "MetricsSeries",
    "MigrationError",
    "OutputGate",
    "QueryExecutor",
    "RateEstimator",
    "RoundRobinScheduler",
    "Scheduler",
    "SelectivityEstimator",
    "SourceQueue",
    "StatisticsCatalog",
    "materialize",
]
