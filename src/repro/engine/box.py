"""Boxes, routers and the output gate: the migration-aware plan topology.

Following the paper's vocabulary, a *box* is the implementation of a plan —
the physical operator DAG actually executed.  The engine keeps the window
operators *outside* the boxes (windows are shared by the old and new plan,
and the optimizer's transformation rules operate on the standard operators
downstream of them), so a migratable box always consumes already-windowed
streams.  Splicing happens at two fixed points:

* a :class:`Router` per input, between the fixed upstream (window operator
  or intermediate stream) and the current box's entry ports;
* an :class:`OutputGate` between the current box's root and the sinks.

A migration strategy only ever rewires routers and the gate; it never needs
to know what is inside a box — the black-box property of GenMig.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..operators import base as _operator_base
from ..operators.base import Operator
from ..temporal.batch import Batch
from ..temporal.element import StreamElement
from ..temporal.time import MIN_TIME, Time

#: An operator input: ``(operator, port)``.
InputPort = Tuple[Operator, int]


@dataclass
class Box:
    """A physical plan over windowed inputs.

    Attributes:
        taps: per input name, the entry ports receiving that input.
        root: the operator producing the box's output stream.
        operators: every operator in the box (for accounting/teardown).
        label: diagnostic name ("old", "new", a plan signature, ...).
    """

    taps: Dict[str, List[InputPort]]
    root: Operator
    operators: List[Operator] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        if not self.operators:
            self.operators = self._discover_operators()

    def _discover_operators(self) -> List[Operator]:
        seen: List[Operator] = []
        frontier = [op for ports in self.taps.values() for op, _ in ports]
        while frontier:
            op = frontier.pop()
            if op in seen:
                continue
            seen.append(op)
            frontier.extend(downstream for downstream, _ in op.subscribers)
        if self.root not in seen:
            seen.append(self.root)
        return seen

    def state_value_count(self) -> int:
        """Payload values held across all operators — the memory metric."""
        return sum(op.state_value_count() for op in self.operators)

    def state_elements(self) -> Iterator[StreamElement]:
        """All elements held in any operator state of this box."""
        for op in self.operators:
            yield from op.state_elements()

    def set_meter(self, meter: object) -> None:
        """Point every operator's cost accounting at ``meter``."""
        for op in self.operators:
            op.meter = meter

    def sever(self) -> None:
        """Disconnect the box's internal root output (teardown helper)."""
        self.root.clear_subscribers()

    def state_digest(self) -> tuple:
        """Canonical, hashable digest of every operator's state.

        Used by the model checker's schedule pruning
        (:meth:`~repro.engine.executor.QueryExecutor.fingerprint`): two
        executor states with equal digests hold identical operator state,
        so their continuations are schedule-for-schedule identical.
        """
        return tuple(operator_digest(op) for op in self.operators)


def _element_key(element: StreamElement) -> tuple:
    """Order-free canonical identity of one state element."""
    return (element.start, element.end, repr(element.payload), repr(element.flag))


def operator_digest(op: Operator) -> tuple:
    """Canonical, hashable digest of one operator's complete state.

    Combines the shared progress machinery (per-port watermarks, progress
    marks, staged output in release order) with the held state elements —
    port-resolved through the ``state_of_port`` drain hook when the
    operator has one, otherwise as one sorted bag.  Sorting makes the
    digest independent of internal iteration order, so state reached
    through different (but effect-equal) event interleavings compares
    equal.
    """
    progress = op.progress_state()
    drain = getattr(op, "state_of_port", None)
    if callable(drain):
        state: tuple = tuple(
            tuple(sorted(_element_key(e) for e in drain(port)))
            for port in range(op.arity)
        )
    else:
        state = (tuple(sorted(_element_key(e) for e in op.state_elements())),)
    extras = getattr(op, "checkpoint_extras", None)
    return (
        op.name,
        type(op).__name__,
        tuple(progress["watermarks"]),
        progress["emitted_watermark"],
        progress["purged_watermark"],
        tuple(_element_key(e) for e in progress["staged"]),
        state,
        repr(extras()) if callable(extras) else None,
    )


class Router(Operator):
    """Stateless splice point: forwards its input to swappable subscribers."""

    def __init__(self, name: str = "") -> None:
        super().__init__(arity=1, name=name or "router", ordered_output=False)

    def _on_element(self, element: StreamElement, port: int) -> None:
        self._emit(element)

    def process_batch(self, batch: Batch, port: int = 0) -> None:
        """Forward a whole batch in one dispatch per subscriber."""
        if _operator_base.SANITIZER is not None:
            _operator_base.SANITIZER.on_batch(self, batch, 0)
        watermarks = self._watermarks
        first = batch.first_start
        if first < watermarks[0]:
            raise ValueError(
                f"{self.name}: out-of-order element on port 0: "
                f"{first} < watermark {watermarks[0]}"
            )
        watermarks[0] = batch.last_start
        self._emit_batch(batch)
        self._advance()
        if batch.watermark > watermarks[0]:
            self.process_heartbeat(batch.watermark, 0)

    def retarget(self, targets: List[InputPort]) -> None:
        """Atomically replace the subscriber list."""
        self._subscribers = list(targets)


class OutputGate:
    """Terminal delivery point: forwards results to sinks and instruments.

    Unlike operators, the gate tolerates ordering violations — it counts
    them instead of failing.  This matters for the Parallel Track baseline,
    whose end-of-migration buffer flush emits results whose start timestamps
    interleave with already-delivered ones; the counter makes that anomaly
    measurable rather than fatal.
    """

    def __init__(self, name: str = "gate") -> None:
        self.name = name
        self._sinks: List[object] = []
        self.delivered = 0
        self.order_violations = 0
        self._last_start: Time = MIN_TIME
        self.on_delivery: Optional[object] = None

    def add_sink(self, sink: object) -> None:
        """Attach a sink (``process``/``process_heartbeat`` duck type)."""
        self._sinks.append(sink)

    def process(self, element: StreamElement, port: int = 0) -> None:
        """Deliver one result to every sink."""
        violated = element.start < self._last_start
        if _operator_base.SANITIZER is not None:
            _operator_base.SANITIZER.on_gate(self, element, violated)
        if violated:
            self.order_violations += 1
        else:
            self._last_start = element.start
        self.delivered += 1
        if self.on_delivery is not None:
            self.on_delivery(element)
        for sink in self._sinks:
            sink.process(element)

    def process_batch(self, batch: Batch) -> None:
        """Deliver a whole batch of results, element-wise semantics."""
        process = self.process
        for element in batch.elements:
            process(element)

    def process_heartbeat(self, t: Time, port: int = 0) -> None:
        """Forward progress information to every sink."""
        for sink in self._sinks:
            sink.process_heartbeat(t)

    def progress_state(self) -> dict:
        """Capture delivery counters for a checkpoint."""
        return {
            "last_start": self._last_start,
            "delivered": self.delivered,
            "order_violations": self.order_violations,
        }

    def restore_progress(self, progress: dict) -> None:
        """Re-install counters captured by :meth:`progress_state`."""
        self._last_start = progress["last_start"]
        self.delivered = progress["delivered"]
        self.order_violations = progress["order_violations"]
