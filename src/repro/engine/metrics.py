"""Time-series instrumentation behind the paper's Figures 4, 5 and 6.

The recorder tracks, per application-time bucket:

* ``output``   — results delivered to the sink (Figure 4 output rate),
* ``memory``   — payload values held in all live operator state, including
  migration operators (Figure 5 memory usage),
* ``cost``     — cumulative CPU cost units consumed (Figure 6 system load),
* ``results`` — cumulative results delivered (Figure 6 y-axis).

Buckets are application-time windows of ``bucket_size`` chronons; with the
default millisecond chronon and ``bucket_size=1000`` a bucket is one second
of application time, matching the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..temporal.time import Time


@dataclass
class MetricsSeries:
    """Dense per-bucket series with named columns."""

    bucket_size: Time
    output: Dict[int, int] = field(default_factory=dict)
    memory: Dict[int, int] = field(default_factory=dict)
    cost: Dict[int, int] = field(default_factory=dict)
    results: Dict[int, int] = field(default_factory=dict)

    def dense(self, column: Dict[int, int], fill: Optional[int] = 0) -> List[int]:
        """Expand a sparse column to a dense zero-based list.

        ``fill=None`` carries the previous value forward (for cumulative or
        sampled columns such as memory).
        """
        if not column:
            return []
        top = max(column)
        series: List[int] = []
        previous = 0
        for bucket in range(top + 1):
            if bucket in column:
                previous = column[bucket]
                series.append(previous)
            elif fill is None:
                series.append(previous)
            else:
                series.append(fill)
        return series


class MetricsRecorder:
    """Collects the experiment time series during an executor run."""

    def __init__(self, bucket_size: Time = 1000) -> None:
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        self.series = MetricsSeries(bucket_size)
        self._cumulative_results = 0
        #: Structured events (controller decisions, migration lifecycle)
        #: interleaved with the numeric series; see :meth:`record_event`.
        self.events: List[Dict[str, object]] = []
        #: Model-checker counters (:mod:`repro.analysis.modelcheck`):
        #: schedules explored/pruned and violations found, summed over
        #: every check recorded into this recorder.  Exported by
        #: :meth:`to_dict` only when a check actually ran, so snapshots of
        #: ordinary runs are unchanged.
        self.modelcheck: Dict[str, int] = {}
        # Baseline of the never-reset lifetime kernel-cache counters, so
        # to_dict() can report this query's own compile traffic even when
        # clear_kernel_cache() resets the epoch counters mid-run.
        from ..plans.kernels import kernel_cache_stats

        stats = kernel_cache_stats()
        self._kernel_baseline = {
            key: stats[key]
            for key in ("lifetime_hits", "lifetime_misses", "lifetime_compiled")
        }

    def bucket_of(self, t: Time) -> int:
        """Map an application timestamp to its bucket index."""
        return int(t // self.series.bucket_size)

    def record_output(self, clock: Time, count: int = 1) -> None:
        """Attribute ``count`` sink deliveries to the bucket of ``clock``."""
        bucket = self.bucket_of(clock)
        self.series.output[bucket] = self.series.output.get(bucket, 0) + count
        self._cumulative_results += count
        self.series.results[bucket] = self._cumulative_results

    def sample_memory(self, clock: Time, values: int) -> None:
        """Record the current state memory (payload value count)."""
        self.series.memory[self.bucket_of(clock)] = values

    def sample_cost(self, clock: Time, total_cost: int) -> None:
        """Record the cumulative CPU cost units consumed so far."""
        self.series.cost[self.bucket_of(clock)] = total_cost

    def record_event(
        self, clock: Time, kind: str, query: str = "", **detail: object
    ) -> None:
        """Append one structured event (JSON-serialisable values only).

        Events carry the application timestamp, its bucket (so they can be
        correlated with the numeric series), a ``kind`` tag and arbitrary
        detail columns — the service layer records every re-optimization
        decision and migration lifecycle step through this channel.
        """
        entry: Dict[str, object] = {
            "at": clock,
            "bucket": self.bucket_of(clock),
            "kind": kind,
        }
        if query:
            entry["query"] = query
        entry.update(detail)
        self.events.append(entry)

    def record_modelcheck(
        self,
        scenario: str,
        explored: int,
        pruned: int,
        violations: int,
    ) -> None:
        """Accumulate one model-check run's schedule counters."""
        counters = self.modelcheck
        counters["checks"] = counters.get("checks", 0) + 1
        counters["schedules_explored"] = (
            counters.get("schedules_explored", 0) + explored
        )
        counters["schedules_pruned"] = counters.get("schedules_pruned", 0) + pruned
        counters["violations"] = counters.get("violations", 0) + violations
        self.record_event(
            0,
            "modelcheck",
            scenario=scenario,
            explored=explored,
            pruned=pruned,
            violations=violations,
        )

    # ------------------------------------------------------------------ #
    # Convenience accessors used by the benchmark harness
    # ------------------------------------------------------------------ #

    def output_rate(self) -> List[int]:
        """Dense per-bucket output counts (Figure 4 series)."""
        return self.series.dense(self.series.output, fill=0)

    def memory_usage(self) -> List[int]:
        """Dense per-bucket memory samples (Figure 5 series)."""
        return self.series.dense(self.series.memory, fill=None)

    def cumulative_cost(self) -> List[int]:
        """Dense per-bucket cumulative cost (Figure 6 x-axis)."""
        return self.series.dense(self.series.cost, fill=None)

    def cumulative_results(self) -> List[int]:
        """Dense per-bucket cumulative results (Figure 6 y-axis)."""
        return self.series.dense(self.series.results, fill=None)

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def epoch_state(self) -> dict:
        """Capture the recorder's accumulated series for a checkpoint.

        The kernel-cache baseline is *not* captured: it anchors process-
        lifetime counters that do not survive a restart, so a restored
        recorder re-baselines against the new process.
        """
        return {
            "bucket_size": self.series.bucket_size,
            "output": dict(self.series.output),
            "memory": dict(self.series.memory),
            "cost": dict(self.series.cost),
            "results": dict(self.series.results),
            "cumulative_results": self._cumulative_results,
            "events": [dict(event) for event in self.events],
        }

    def restore_epoch(self, state: dict) -> None:
        """Re-install a series epoch captured by :meth:`epoch_state`."""
        if state["bucket_size"] != self.series.bucket_size:
            raise ValueError(
                f"metrics epoch has bucket_size {state['bucket_size']}, "
                f"recorder uses {self.series.bucket_size}"
            )
        self.series.output = dict(state["output"])
        self.series.memory = dict(state["memory"])
        self.series.cost = dict(state["cost"])
        self.series.results = dict(state["results"])
        self._cumulative_results = state["cumulative_results"]
        self.events = [dict(event) for event in state["events"]]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """A JSON-serialisable snapshot of all recorded series.

        ``kernel_cache`` reports the kernel compile-cache traffic *of this
        query*: hits/misses/compiled are deltas of the never-reset
        lifetime counters against the recorder's construction-time
        baseline, so a :func:`repro.plans.kernels.clear_kernel_cache`
        between queries (or mid-run) cannot skew the readout.  The raw
        process-epoch counters ride along under ``process_epoch`` for
        whole-process diagnostics.
        """
        from ..plans.kernels import kernel_cache_stats

        stats = kernel_cache_stats()
        baseline = self._kernel_baseline
        snapshot = {
            "bucket_size": self.series.bucket_size,
            "output": self.output_rate(),
            "memory": self.memory_usage(),
            "cost": self.cumulative_cost(),
            "results": self.cumulative_results(),
            "events": list(self.events),
            "kernel_cache": {
                "hits": stats["lifetime_hits"] - baseline["lifetime_hits"],
                "misses": stats["lifetime_misses"] - baseline["lifetime_misses"],
                "compiled": stats["lifetime_compiled"]
                - baseline["lifetime_compiled"],
                "process_epoch": {
                    "hits": stats["hits"],
                    "misses": stats["misses"],
                    "compiled": stats["compiled"],
                },
            },
        }
        if self.modelcheck:
            snapshot["modelcheck"] = dict(self.modelcheck)
        return snapshot

    @classmethod
    def aggregate(cls, parts: List[dict]) -> dict:
        """Sum per-shard :meth:`to_dict` snapshots into one fleet view.

        Used by the sharded executor: each shard worker runs its own
        recorder over its slice of the key space, and the per-bucket
        series of a hash-partitioned run sum to the single-process
        series — outputs are disjointly owned, memory is disjointly
        held, cost is disjointly charged.  Columns with carry-forward
        semantics (memory, cumulative cost/results) are padded with
        their last value before summing, so shards whose series end in
        different buckets still align; the output column pads with
        zero.  An optional per-part ``meter`` entry (shard worker stats)
        is summed by category; kernel-cache deltas are summed as-is, so
        under a process transport the total counts each worker's own
        compile traffic.
        """
        if not parts:
            raise ValueError("cannot aggregate zero metrics snapshots")
        bucket_size = parts[0]["bucket_size"]
        for part in parts[1:]:
            if part["bucket_size"] != bucket_size:
                raise ValueError(
                    f"cannot aggregate mixed bucket sizes: "
                    f"{part['bucket_size']} != {bucket_size}"
                )

        def summed(column: str, carry: bool) -> List[int]:
            series = [part[column] for part in parts]
            top = max(len(s) for s in series)
            out = []
            for bucket in range(top):
                total = 0
                for s in series:
                    if bucket < len(s):
                        total += s[bucket]
                    elif carry and s:
                        total += s[-1]
                out.append(total)
            return out

        events = [event for part in parts for event in part["events"]]
        events.sort(key=lambda event: event.get("at", 0))
        caches = [part["kernel_cache"] for part in parts]
        aggregated = {
            "bucket_size": bucket_size,
            "shards": len(parts),
            "output": summed("output", carry=False),
            "memory": summed("memory", carry=True),
            "cost": summed("cost", carry=True),
            "results": summed("results", carry=True),
            "events": events,
            "kernel_cache": {
                "hits": sum(c["hits"] for c in caches),
                "misses": sum(c["misses"] for c in caches),
                "compiled": sum(c["compiled"] for c in caches),
                "per_shard": [
                    {k: c[k] for k in ("hits", "misses", "compiled")}
                    for c in caches
                ],
            },
        }
        if all("meter" in part for part in parts):
            categories: Dict[str, int] = {}
            for part in parts:
                for category, charge in part["meter"]["by_category"].items():
                    categories[category] = categories.get(category, 0) + charge
            aggregated["meter"] = {
                "total": sum(part["meter"]["total"] for part in parts),
                "by_category": categories,
            }
        return aggregated

    def dump(self, path: str) -> None:
        """Write the recorded series as JSON to ``path``."""
        import json

        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2)

    @classmethod
    def load(cls, path: str) -> dict:
        """Read a previously dumped series file."""
        import json

        with open(path) as f:
            return json.load(f)
