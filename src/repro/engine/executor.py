"""The query executor: event loop, migration lifecycle, instrumentation.

The executor owns one continuous query: its named input streams, the
per-source window operators (shared by every plan version, see
``engine.box``), the currently installed box, and the output gate.  It
replays the finite input streams in the order chosen by a scheduler, drives
watermarks/heartbeats, fires scheduled actions (such as "start migrating at
t = 20 s"), and hands control to an installed migration strategy after
every event so the strategy can advance its state machine.

Time is *application time* throughout: the executor is a deterministic
simulator, matching the paper's sufficient-system-resources assumption
under which application and system time coincide (Section 4.4).
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, Dict, List, Optional, Tuple

from ..operators import base as _operator_base
from ..operators.base import NULL_METER, CostMeter, Operator
from ..operators.window import TimeWindow
from ..recovery.errors import RecoveryError
from ..streams.stream import PhysicalStream
from ..temporal.batch import Batch
from ..temporal.columnar import ColumnarBatch
from ..temporal.time import MAX_TIME, MIN_TIME, Time
from .box import Box, OutputGate, Router
from .metrics import MetricsRecorder
from .scheduler import GlobalOrderScheduler, Scheduler
from .transport import LocalTransport, Transport
from .statistics import StatisticsCatalog


class MigrationError(RuntimeError):
    """Raised on invalid migration lifecycle transitions."""


class QueryExecutor:
    """Runs one continuous query over finite input streams.

    Args:
        sources: named raw input streams (unit-interval elements).
        windows: per-source time window sizes, applied at ingestion.
        box: the initial physical plan over the windowed inputs.
        scheduler: ingestion order policy; default global temporal order.
        meter: cost meter shared by all operators; created if omitted.
        metrics: optional recorder for the Figure 4-6 series.
        global_heartbeats: propagate each ingested timestamp to all inputs
            as a heartbeat.  Sound only under the global-order scheduler and
            enabled by default exactly then.
        interval_bound: finite bound on raw input interval lengths; 1 for
            ordinary timestamped inputs (the Section 2.2 conversion), larger
            when a pre-windowed intermediate stream is fed in directly.
        batch_size: cap on the runs the batched event loop pulls from the
            scheduler; ``1`` selects the legacy element-at-a-time loop.
        batch_during_migration: keep batching while a migration strategy is
            installed, provided the strategy declares itself ``batchable``.
            Off by default: the element loop ticks the strategy after every
            element, which is the reference migration timing; batching is
            snapshot-equivalent but may chunk the strategy's transitions at
            run boundaries.
        sanitize: install the process-wide stream-invariant sanitizer
            (:mod:`repro.analysis.sanitizer`) for this run.  Defaults to
            the ``REPRO_SANITIZE`` environment variable; when off, the
            engine's sanitizer hooks cost a single ``is None`` test.
        transport: supplies the source queues :meth:`run` drains (see
            :mod:`repro.engine.transport`).  The default in-process
            :class:`~repro.engine.transport.LocalTransport` reproduces
            the historical behaviour exactly.
    """

    def __init__(
        self,
        sources: Dict[str, PhysicalStream],
        windows: Dict[str, Time],
        box: Box,
        scheduler: Optional[Scheduler] = None,
        meter: Optional[CostMeter] = None,
        metrics: Optional[MetricsRecorder] = None,
        global_heartbeats: Optional[bool] = None,
        interval_bound: Time = 1,
        batch_size: int = 64,
        batch_during_migration: bool = False,
        sanitize: Optional[bool] = None,
        transport: Optional["Transport"] = None,
    ) -> None:
        missing = set(sources) - set(windows)
        if missing:
            raise ValueError(f"no window size given for sources: {sorted(missing)}")
        self.sources = dict(sources)
        self.windows = dict(windows)
        self.scheduler = scheduler or GlobalOrderScheduler()
        if global_heartbeats is None:
            global_heartbeats = isinstance(self.scheduler, GlobalOrderScheduler)
        self.global_heartbeats = global_heartbeats
        self.meter = meter or CostMeter()
        self.metrics = metrics
        if interval_bound < 1:
            raise ValueError(f"interval_bound must be >= 1, got {interval_bound}")
        self.interval_bound = interval_bound
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.batch_during_migration = batch_during_migration
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "").lower() in (
                "1",
                "true",
                "yes",
                "on",
            )
        if sanitize:
            from ..analysis.sanitizer import ensure_installed

            ensure_installed()
        self.statistics = StatisticsCatalog()
        self.transport = transport if transport is not None else LocalTransport()

        self.gate = OutputGate()
        self.routers: Dict[str, Router] = {}
        self._window_ops: Dict[str, TimeWindow] = {}
        for name in sources:
            router = Router(name=f"router[{name}]")
            window_op = TimeWindow(self.windows[name], name=f"window[{name}:{self.windows[name]}]")
            window_op.subscribe(router, 0)
            self.routers[name] = router
            self._window_ops[name] = window_op

        self.box: Box = box
        self._install_box(box)

        self.clock: Time = MIN_TIME
        self.source_watermarks: Dict[str, Time] = {name: MIN_TIME for name in sources}
        self.source_max_ends: Dict[str, Time] = {name: MIN_TIME for name in sources}
        self.source_seen: Dict[str, bool] = {name: False for name in sources}
        self._actions: List[Tuple[Time, int, Callable[[], None]]] = []
        self._action_sequence = 0
        self.strategy: Optional[object] = None
        self.migration_log: List[object] = []
        #: Invoked with the :class:`~repro.core.strategy.MigrationReport`
        #: each time a migration completes; the service layer's controller
        #: uses it to close its hysteresis/cooldown loop.
        self.on_migration_complete: Optional[Callable[[object], None]] = None
        #: Set once every input stream is exhausted; migration strategies
        #: use it to finalise even when the usual progress conditions (all
        #: inputs seen, watermarks past T_split) can no longer be met.
        self.at_end_of_stream = False
        self._finished = False

        if self.metrics is not None:
            recorder = self.metrics
            self.gate.on_delivery = lambda element: recorder.record_output(self.clock)

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    @property
    def global_window(self) -> Time:
        """The global window constraint ``w`` (maximum over all inputs)."""
        return max(self.windows.values())

    def _install_box(self, box: Box) -> None:
        """Point routers and the gate at ``box`` and wire its meter."""
        for name, router in self.routers.items():
            router.retarget(box.taps.get(name, []))
        box.root.clear_subscribers()
        box.root.attach_sink(self.gate)
        box.set_meter(self.meter)
        self._wire_statistics(box)
        self.box = box
        # Feed columnar runs whenever the installed plan contains a
        # columnar operator: the struct-of-arrays layout is built once at
        # ingestion and flows through windows and routers untouched.
        self._columnar_feed = any(
            getattr(op, "_columnar", False) for op in box.operators
        )

    def _wire_statistics(self, box: Box) -> None:
        """Point operators' selectivity probes at the statistics catalog.

        Operators carrying a ``statistics_key`` (joins compiled by the
        physical builder) report (tested, matched) counts; the catalog
        entry uses the same key the cost model consults, closing the
        monitor → estimate → re-optimize loop of the paper's introduction.
        """
        for operator in box.operators:
            key = getattr(operator, "statistics_key", None)
            if key:
                operator.selectivity_probe = self.statistics.selectivity_of(key).observe

    def add_sink(self, sink: object) -> None:
        """Attach a sink to the query output."""
        self.gate.add_sink(sink)

    # ------------------------------------------------------------------ #
    # Scheduled actions and migration lifecycle
    # ------------------------------------------------------------------ #

    def schedule(self, at: Time, action: Callable[[], None]) -> None:
        """Run ``action`` once the clock reaches application time ``at``."""
        self._action_sequence += 1
        heapq.heappush(self._actions, (at, self._action_sequence, action))

    def schedule_migration(self, at: Time, new_box: Box, strategy: object) -> None:
        """Schedule a migration to ``new_box`` via ``strategy`` at time ``at``."""
        self.schedule(at, lambda: self.start_migration(new_box, strategy))

    @property
    def migration_active(self) -> bool:
        """True while a migration strategy is installed and running."""
        return self.strategy is not None

    def start_migration(self, new_box: Box, strategy: object) -> None:
        """Begin migrating from the current box to ``new_box`` immediately."""
        if self.strategy is not None:
            raise MigrationError("a migration is already in progress")
        new_box.set_meter(self.meter)
        if any(getattr(op, "_columnar", False) for op in new_box.operators):
            self._columnar_feed = True
        self.strategy = strategy
        strategy.begin(self, new_box)
        self._poll_strategy()

    def _poll_strategy(self) -> None:
        if self.strategy is None:
            return
        self.strategy.after_event(self)
        if self.strategy.finished:
            report = self.strategy.report()
            self.migration_log.append(report)
            self.strategy = None
            if self.on_migration_complete is not None:
                self.on_migration_complete(report)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def state_value_count(self) -> int:
        """Payload values held in all live state (box + migration extras)."""
        total = self.box.state_value_count()
        if self.strategy is not None:
            total += self.strategy.state_value_count()
        return total

    def fingerprint(self) -> Optional[tuple]:
        """Canonical, hashable digest of the executor's complete state.

        The model checker (:mod:`repro.analysis.modelcheck`) prunes its
        schedule exploration on this: two runs whose fingerprints (and
        emitted output prefixes) agree behave identically under every
        continuation, so only one needs exploring further.  The digest
        covers the clock, per-source progress, the window operators, every
        operator of the installed box, the gate's ordering marks, pending
        actions, and — through the strategy's ``phase_state`` hook — all
        migration-owned auxiliary state.  Returns ``None`` when an
        installed strategy is not enumerable (no ``phase_state``), which
        tells the explorer to disable pruning rather than risk unsound
        identification.
        """
        from .box import operator_digest

        strategy_state: Optional[tuple] = None
        if self.strategy is not None:
            hook = getattr(self.strategy, "phase_state", None)
            strategy_state = hook() if callable(hook) else None
            if strategy_state is None:
                return None
        return (
            self.clock,
            tuple(sorted(self.source_watermarks.items())),
            tuple(sorted(self.source_max_ends.items())),
            tuple(sorted(self.source_seen.items())),
            self.at_end_of_stream,
            tuple(
                (name, operator_digest(op))
                for name, op in sorted(self._window_ops.items())
            ),
            self.box.state_digest(),
            tuple(sorted(self.gate.progress_state().items())),
            len(self._actions),
            strategy_state,
        )

    def _sample_metrics(self) -> None:
        if self.metrics is None:
            return
        self.metrics.sample_memory(self.clock, self.state_value_count())
        self.metrics.sample_cost(self.clock, self.meter.total)

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #

    def run(self, batch_size: Optional[int] = None) -> None:
        """Replay all input streams to completion.

        The loop pulls source-pure runs of up to ``batch_size`` elements
        (default: the constructor setting) from the scheduler and ingests
        them batch-wise; the element stream entering the plan — and every
        byte of output — is identical to the element-at-a-time loop, which
        remains reachable as ``batch_size=1``.  The run ends with an
        end-of-stream heartbeat on every input, which drains all operator
        state and forces any in-flight migration to its natural completion
        (all watermarks pass ``T_split``).
        """
        if self._finished:
            raise RecoveryError("executor can only run once")
        if batch_size is None:
            batch_size = self.batch_size
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        queues = [
            self.transport.source_queue(name, stream)
            for name, stream in self.sources.items()
        ]
        # Undelivered elements per source.  The idle-source promises below
        # key off this countdown rather than live queue emptiness: the
        # batching scheduler pops a lookahead element to detect run
        # boundaries, so a queue can look empty while an element is still
        # in flight — the countdown only reaches zero once every element
        # has actually been handed to the plan.
        remaining = {queue.name: len(queue) for queue in queues}
        if batch_size == 1:
            for name, element in self.scheduler.order(queues):
                remaining[name] -= 1
                self._step_element(name, element, remaining)
        else:
            for name, batch in self.scheduler.batches(queues, batch_size):
                remaining[name] -= len(batch)
                self._ingest_batch(name, batch, remaining)
        self.finish()

    def _promise_exhausted(self, name: str, remaining: Dict[str, int]) -> None:
        """Heartbeat sources that have delivered their whole stream.

        Without global heartbeats (non-global-order scheduling), a source
        whose stream has ended would stall downstream watermarks until
        end-of-stream; once exhausted it can safely promise the global
        clock.
        """
        clock = self.clock
        for other, left in remaining.items():
            if other != name and left == 0:
                self._window_ops[other].process_heartbeat(clock, 0)

    def _step_element(
        self, name: str, element, remaining: Optional[Dict[str, int]] = None
    ) -> None:
        """One turn of the element-at-a-time protocol (the reference path)."""
        self._fire_actions(element.start)
        self.clock = max(self.clock, element.start)
        self._sample_metrics_if_new_bucket()
        self._ingest(name, element)
        if remaining is not None and not self.global_heartbeats:
            self._promise_exhausted(name, remaining)
        self._poll_strategy()

    def _ingest(self, name: str, element) -> None:
        if _operator_base.SANITIZER is not None:
            _operator_base.SANITIZER.on_source(
                name, element, self.source_watermarks[name]
            )
        self.source_watermarks[name] = element.start
        windowed_end = element.end + self.windows[name]
        if windowed_end > self.source_max_ends[name]:
            self.source_max_ends[name] = windowed_end
        self.source_seen[name] = True
        self.statistics.rate_of(name).observe(element.start)
        if self.global_heartbeats:
            # Advance every input to the global clock first, so expirations
            # below the new element's timestamp apply before it is processed
            # (the global temporal processing order of Section 5).
            for window_op in self._window_ops.values():
                window_op.process_heartbeat(element.start, 0)
        self._window_ops[name].process(element, 0)

    def _ingest_batch(
        self,
        name: str,
        batch: Batch,
        remaining: Optional[Dict[str, int]] = None,
    ) -> None:
        """Ingest a source-pure run, group by group of equal start.

        Each uniform-start group replays the element protocol's observable
        effects exactly once per distinct timestamp — action firing, clock
        and metrics-bucket updates, and the global heartbeat fan-out are all
        idempotent within a group, so running them per group instead of per
        element changes nothing downstream.  Per-element effects (rate
        observations, max-end tracking) stay per element.  The idle-source
        promises of non-global-heartbeat scheduling are the one effect that
        is *not* idempotent mid-group: the element loop first fires them
        after the group's opening element, and state-size-dependent charges
        (``Difference`` finalisation) observe exactly that point — so on
        that path the opening element goes through the element protocol,
        the promises fire, and only the tail of the group is batched.
        While a migration strategy is installed the loop drops to the
        element path, whose per-element strategy tick is the reference
        migration timing — unless ``batch_during_migration`` is set and the
        strategy declares itself ``batchable``.
        """
        elements = batch.elements
        n = len(elements)
        window_op = self._window_ops[name]
        window_size = self.windows[name]
        i = 0
        while i < n:
            start = elements[i].start
            j = i + 1
            while j < n and elements[j].start == start:
                j += 1
            self._fire_actions(start)
            if self.strategy is not None and not (
                self.batch_during_migration and self.strategy.batchable
            ):
                for element in elements[i:]:
                    self._step_element(name, element, remaining)
                return
            self.clock = max(self.clock, start)
            self._sample_metrics_if_new_bucket()
            group = elements[i:j]
            if _operator_base.SANITIZER is not None:
                watermark = self.source_watermarks[name]
                for element in group:
                    _operator_base.SANITIZER.on_source(name, element, watermark)
            self.source_watermarks[name] = start
            max_end = self.source_max_ends[name]
            for element in group:
                windowed_end = element.end + window_size
                if windowed_end > max_end:
                    max_end = windowed_end
            self.source_max_ends[name] = max_end
            self.source_seen[name] = True
            observe = self.statistics.rate_of(name).observe
            for element in group:
                observe(element.start)
            if self._columnar_feed:
                make_batch = ColumnarBatch.from_elements
            else:
                make_batch = Batch._trusted
            if self.global_heartbeats:
                for other_op in self._window_ops.values():
                    other_op.process_heartbeat(start, 0)
                window_op.process_batch(make_batch(group, start, name, True), 0)
            elif remaining is not None:
                window_op.process(group[0], 0)
                self._promise_exhausted(name, remaining)
                if len(group) > 1:
                    window_op.process_batch(
                        make_batch(group[1:], start, name, True), 0
                    )
            else:
                window_op.process_batch(make_batch(group, start, name, True), 0)
            self._poll_strategy()
            i = j

    def _fire_actions(self, up_to: Time) -> None:
        while self._actions and self._actions[0][0] <= up_to:
            action = heapq.heappop(self._actions)[2]
            action()

    # ------------------------------------------------------------------ #
    # Online (incremental) interface
    # ------------------------------------------------------------------ #

    def push(self, name: str, element) -> None:
        """Feed one element online instead of replaying finite streams.

        For long-running use (the actual DSMS setting), construct the
        executor with empty source streams and push elements as they
        arrive; scheduled actions and migrations advance exactly as during
        a replayed run.  Per-source elements must arrive in start-timestamp
        order; ``global_heartbeats`` additionally requires global order.
        """
        if self._finished:
            raise RecoveryError("executor already finished")
        if name not in self._window_ops:
            raise KeyError(f"unknown source {name!r}")
        if self.global_heartbeats and element.start < self.clock:
            raise ValueError(
                f"global-order executor received {name!r} element at "
                f"{element.start} behind the clock {self.clock}"
            )
        self._fire_actions(element.start)
        self.clock = max(self.clock, element.start)
        self._sample_metrics_if_new_bucket()
        self._ingest(name, element)
        self._poll_strategy()

    def push_batch(self, name: str, batch: Batch) -> None:
        """Feed an ordered run of one source's elements online.

        Semantically equivalent to pushing the elements one by one followed
        by :meth:`advance` to the batch's trailing watermark (when it
        promises beyond the last element); uniform-start stretches of the
        run take the amortised batch path through the plan.
        """
        if self._finished:
            raise RecoveryError("executor already finished")
        if name not in self._window_ops:
            raise KeyError(f"unknown source {name!r}")
        first = batch.first_start
        if self.global_heartbeats and first < self.clock:
            raise ValueError(
                f"global-order executor received {name!r} element at "
                f"{first} behind the clock {self.clock}"
            )
        self._ingest_batch(name, batch)
        if batch.watermark > batch.last_start:
            self.advance(name, batch.watermark)

    def advance(self, name: str, t: Time) -> None:
        """Promise online that ``name`` will not deliver before ``t``."""
        if name not in self._window_ops:
            raise KeyError(f"unknown source {name!r}")
        self._fire_actions(t)
        self.clock = max(self.clock, t)
        if self.source_watermarks[name] < t:
            self.source_watermarks[name] = t
        self._window_ops[name].process_heartbeat(t, 0)
        self._poll_strategy()

    def finish(self) -> None:
        """End an online session: drain all state and complete migrations."""
        if self._finished:
            return
        self._fire_actions(MAX_TIME)
        self.at_end_of_stream = True
        for window_op in self._window_ops.values():
            window_op.process_heartbeat(MAX_TIME, 0)
        self._poll_strategy()
        if self.strategy is not None:
            raise MigrationError(
                f"migration {self.strategy!r} did not complete by end of stream"
            )
        self._sample_metrics()
        self._finished = True

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def quiesce_for_checkpoint(self) -> None:
        """Verify the executor sits at a consistent cut, or refuse loudly.

        A cut is consistent between ingestion turns when no migration is
        in flight (migration strategies hold auxiliary operators outside
        the box) and no actions are pending (scheduled actions are
        closures, which no snapshot format can serialize faithfully).
        """
        if self._finished:
            raise RecoveryError("cannot checkpoint a finished executor")
        if self.strategy is not None:
            raise RecoveryError(
                "cannot checkpoint while a migration is in flight: wait for "
                f"{self.strategy!r} to complete"
            )
        if self._actions:
            raise RecoveryError(
                f"cannot checkpoint with {len(self._actions)} scheduled "
                "action(s) pending: actions are closures and cannot be "
                "serialized"
            )

    def checkpoint_state(self) -> dict:
        """Capture everything needed to rebuild this executor elsewhere.

        Operator state leaves through the GenMig drain hooks
        (``state_of_port``), exactly the boundary Moving States already
        trusts; a stateful operator lacking the hooks makes the plan
        non-checkpointable and raises — the same condition verifier check
        CKP001 flags statically.
        """
        self.quiesce_for_checkpoint()
        operators = []
        for op in self.box.operators:
            record: Dict[str, object] = {
                "type": type(op).__name__,
                "name": op.name,
                "progress": op.progress_state(),
            }
            drain = getattr(op, "state_of_port", None)
            seed = getattr(op, "seed_state", None)
            if callable(drain) and callable(seed):
                record["ports"] = [list(drain(port)) for port in range(op.arity)]
            elif type(op).state_elements is not Operator.state_elements:
                raise RecoveryError(
                    f"operator {op.name!r} ({type(op).__name__}) holds state "
                    "but lacks the state_of_port/seed_state drain hooks — "
                    "the plan is not checkpointable (verifier check CKP001)"
                )
            else:
                record["ports"] = None
            extras = getattr(op, "checkpoint_extras", None)
            if callable(extras):
                record["extras"] = extras()
            operators.append(record)
        return {
            "clock": self.clock,
            "source_watermarks": dict(self.source_watermarks),
            "source_max_ends": dict(self.source_max_ends),
            "source_seen": dict(self.source_seen),
            "last_bucket": self._last_bucket,
            "meter": {
                "total": self.meter.total,
                "by_category": dict(self.meter.by_category),
            },
            "gate": self.gate.progress_state(),
            "operators": operators,
        }

    def restore_checkpoint(self, state: dict) -> None:
        """Seed a freshly built executor from :meth:`checkpoint_state`.

        The executor must be untouched (same plan, nothing ingested); the
        box is expected to be structurally identical to the checkpointed
        one — same operators in the same discovery order — which holds
        whenever both were built by ``PhysicalBuilder`` from the same
        logical plan.  Progress is restored before state is seeded: the
        seeding hooks of Aggregate/Difference derive their finalisation
        frontiers from the purged watermark.
        """
        if (
            self.clock != MIN_TIME
            or any(self.source_seen.values())
            or self._finished
            or self.strategy is not None
            or self.gate.delivered
        ):
            raise RecoveryError("can only restore into a fresh executor")
        records = state["operators"]
        if len(records) != len(self.box.operators):
            raise RecoveryError(
                f"snapshot has {len(records)} operators, the rebuilt plan "
                f"has {len(self.box.operators)}: the plans differ"
            )
        for op, record in zip(self.box.operators, records):
            if record["type"] != type(op).__name__ or record["name"] != op.name:
                raise RecoveryError(
                    f"snapshot operator {record['name']!r} ({record['type']}) "
                    f"does not match rebuilt operator {op.name!r} "
                    f"({type(op).__name__}): the plans differ"
                )
            op.restore_progress(record["progress"])
            if record["ports"] is not None:
                for port, elements in enumerate(record["ports"]):
                    op.seed_state(port, list(elements))
            extras = record.get("extras")
            if extras is not None:
                op.restore_extras(extras)
        self.clock = state["clock"]
        self.source_watermarks = dict(state["source_watermarks"])
        self.source_max_ends = dict(state["source_max_ends"])
        self.source_seen = dict(state["source_seen"])
        self._last_bucket = state["last_bucket"]
        self.meter.total = state["meter"]["total"]
        self.meter.by_category = dict(state["meter"]["by_category"])
        self.gate.restore_progress(state["gate"])

    _last_bucket: Optional[int] = None

    def _sample_metrics_if_new_bucket(self) -> None:
        if self.metrics is None:
            return
        bucket = self.metrics.bucket_of(self.clock)
        if bucket != self._last_bucket:
            self._sample_metrics()
            self._last_bucket = bucket
