"""Per-source event queues feeding the schedulers.

The engine is single-threaded and push-based, so inter-operator transport
is a synchronous call; queues exist at the ingestion boundary, where a
scheduler decides in which order the sources' pending elements enter the
plan (Section 5 of the paper runs "a single thread according to the global
temporal ordering"; Remark 2 motivates supporting other policies too).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

from ..temporal.element import StreamElement
from ..temporal.time import Time


class SourceQueue:
    """FIFO of pending elements of one named source.

    Monotonicity is enforced against the whole history of the queue, not
    just its current tail: once consumption has begun, an empty queue
    remembers the start timestamp of the last element it handed out, so a
    late push below that floor fails here — at the ingestion boundary —
    instead of deep inside an operator's watermark check.
    """

    __slots__ = ("name", "_items", "_floor")

    def __init__(self, name: str, elements: Iterable[StreamElement] = ()) -> None:
        self.name = name
        self._items: Deque[StreamElement] = deque(elements)
        self._floor: Optional[Time] = None

    def push(self, element: StreamElement) -> None:
        """Append an element; elements must arrive in start-timestamp order."""
        if self._items and element.start < self._items[-1].start:
            raise ValueError(
                f"source {self.name}: element at {element.start} arrives after "
                f"{self._items[-1].start}"
            )
        if self._floor is not None and element.start < self._floor:
            raise ValueError(
                f"source {self.name}: element at {element.start} arrives after "
                f"{self._floor} was already consumed"
            )
        self._items.append(element)

    def peek(self) -> Optional[StreamElement]:
        """The next pending element, or ``None`` when empty."""
        return self._items[0] if self._items else None

    def pop(self) -> StreamElement:
        """Remove and return the next pending element."""
        element = self._items.popleft()
        self._floor = element.start
        return element

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:
        head = self.next_timestamp
        span = "empty" if head is None else f"next={head}"
        floor = "" if self._floor is None else f", consumed through {self._floor}"
        return f"SourceQueue({self.name!r}, {len(self._items)} pending, {span}{floor})"

    @property
    def next_timestamp(self) -> Optional[Time]:
        """Start timestamp of the head element, or ``None`` when empty."""
        head = self.peek()
        return head.start if head is not None else None
