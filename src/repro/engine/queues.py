"""Per-source event queues feeding the schedulers.

The engine is single-threaded and push-based, so inter-operator transport
is a synchronous call; queues exist at the ingestion boundary, where a
scheduler decides in which order the sources' pending elements enter the
plan (Section 5 of the paper runs "a single thread according to the global
temporal ordering"; Remark 2 motivates supporting other policies too).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

from ..temporal.element import StreamElement
from ..temporal.time import Time


class SourceQueue:
    """FIFO of pending elements of one named source."""

    __slots__ = ("name", "_items")

    def __init__(self, name: str, elements: Iterable[StreamElement] = ()) -> None:
        self.name = name
        self._items: Deque[StreamElement] = deque(elements)

    def push(self, element: StreamElement) -> None:
        """Append an element; elements must arrive in start-timestamp order."""
        if self._items and element.start < self._items[-1].start:
            raise ValueError(
                f"source {self.name}: element at {element.start} arrives after "
                f"{self._items[-1].start}"
            )
        self._items.append(element)

    def peek(self) -> Optional[StreamElement]:
        """The next pending element, or ``None`` when empty."""
        return self._items[0] if self._items else None

    def pop(self) -> StreamElement:
        """Remove and return the next pending element."""
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def next_timestamp(self) -> Optional[Time]:
        """Start timestamp of the head element, or ``None`` when empty."""
        head = self.peek()
        return head.start if head is not None else None
