"""Ingestion schedulers: in which order do sources' elements enter the plan?

Two policies:

* :class:`GlobalOrderScheduler` — strict global start-timestamp order
  across all sources, the single-threaded setup of the paper's experiments.
  With this policy every operator's watermarks advance in lock-step and
  application-time skew between inputs is zero.
* :class:`RoundRobinScheduler` — serves sources in fixed-size rounds,
  deliberately introducing bounded skew.  This exercises Remark 2 of the
  paper: GenMig keeps a migration start time *per input* precisely so that
  it does not depend on globally ordered scheduling.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..temporal.element import StreamElement
from .queues import SourceQueue


class Scheduler:
    """Strategy deciding the order in which queued elements are consumed."""

    def order(self, queues: List[SourceQueue]) -> Iterator[Tuple[str, StreamElement]]:
        """Yield ``(source_name, element)`` pairs until all queues drain."""
        raise NotImplementedError


class GlobalOrderScheduler(Scheduler):
    """Strict global temporal (start timestamp) order; ties by queue index."""

    def order(self, queues: List[SourceQueue]) -> Iterator[Tuple[str, StreamElement]]:
        while True:
            best: Optional[int] = None
            for index, queue in enumerate(queues):
                t = queue.next_timestamp
                if t is None:
                    continue
                if best is None or t < queues[best].next_timestamp:
                    best = index
            if best is None:
                return
            queue = queues[best]
            yield queue.name, queue.pop()


class RoundRobinScheduler(Scheduler):
    """Serve each source ``batch`` elements per round, skipping empty queues.

    Produces interleavings where one input's watermark runs ahead of
    another's by up to ``batch`` elements — bounded application-time skew.
    """

    def __init__(self, batch: int = 1) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.batch = batch

    def order(self, queues: List[SourceQueue]) -> Iterator[Tuple[str, StreamElement]]:
        while any(queues):
            for queue in queues:
                for _ in range(self.batch):
                    if not queue:
                        break
                    yield queue.name, queue.pop()
