"""Ingestion schedulers: in which order do sources' elements enter the plan?

Two policies:

* :class:`GlobalOrderScheduler` — strict global start-timestamp order
  across all sources, the single-threaded setup of the paper's experiments.
  With this policy every operator's watermarks advance in lock-step and
  application-time skew between inputs is zero.
* :class:`RoundRobinScheduler` — serves sources in fixed-size rounds,
  deliberately introducing bounded skew.  This exercises Remark 2 of the
  paper: GenMig keeps a migration start time *per input* precisely so that
  it does not depend on globally ordered scheduling.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from ..temporal.batch import Batch
from ..temporal.element import StreamElement
from ..temporal.time import Time
from .queues import SourceQueue


class Scheduler:
    """Strategy deciding the order in which queued elements are consumed."""

    def order(self, queues: List[SourceQueue]) -> Iterator[Tuple[str, StreamElement]]:
        """Yield ``(source_name, element)`` pairs until all queues drain."""
        raise NotImplementedError

    def batches(
        self, queues: List[SourceQueue], max_size: int = 64
    ) -> Iterator[Tuple[str, Batch]]:
        """Yield ``(source_name, Batch)`` pairs until all queues drain.

        The default groups maximal runs of consecutive same-source elements
        out of :meth:`order` (capped at ``max_size``), so the batch stream
        is a pure re-chunking of the element stream: same elements, same
        global order, watermark equal to each run's last start.
        """
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        run_name: Optional[str] = None
        run: List[StreamElement] = []
        for name, element in self.order(queues):
            if name == run_name and len(run) < max_size:
                run.append(element)
                continue
            if run:
                yield run_name, Batch._trusted(
                    run, run[-1].start, run_name, run[0].start == run[-1].start
                )
            run_name, run = name, [element]
        if run:
            yield run_name, Batch._trusted(
                run, run[-1].start, run_name, run[0].start == run[-1].start
            )


class GlobalOrderScheduler(Scheduler):
    """Strict global temporal (start timestamp) order; ties by queue index.

    A k-way heap merge: each non-empty queue contributes its head as a
    ``(timestamp, queue_index)`` entry, so choosing the next element is
    O(log #sources) instead of the former full rescan per element.  Queues
    that are empty at some point are re-examined before every pop, which
    preserves the old scan's behaviour for queues filled mid-iteration.
    """

    def order(self, queues: List[SourceQueue]) -> Iterator[Tuple[str, StreamElement]]:
        heap: List[Tuple[Time, int]] = []
        idle: List[int] = []
        for index, queue in enumerate(queues):
            t = queue.next_timestamp
            if t is None:
                idle.append(index)
            else:
                heap.append((t, index))
        heapq.heapify(heap)
        while True:
            if idle:
                still_idle: List[int] = []
                for index in idle:
                    t = queues[index].next_timestamp
                    if t is None:
                        still_idle.append(index)
                    else:
                        heapq.heappush(heap, (t, index))
                idle = still_idle
            if not heap:
                return
            _, index = heapq.heappop(heap)
            queue = queues[index]
            yield queue.name, queue.pop()
            t = queue.next_timestamp
            if t is None:
                idle.append(index)
            else:
                heapq.heappush(heap, (t, index))


class RoundRobinScheduler(Scheduler):
    """Serve each source ``batch`` elements per round, skipping empty queues.

    Produces interleavings where one input's watermark runs ahead of
    another's by up to ``batch`` elements — bounded application-time skew.
    """

    def __init__(self, batch: int = 1) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.batch = batch

    def order(self, queues: List[SourceQueue]) -> Iterator[Tuple[str, StreamElement]]:
        while any(queues):
            for queue in queues:
                for _ in range(self.batch):
                    if not queue:
                        break
                    yield queue.name, queue.pop()
