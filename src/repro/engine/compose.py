"""Composing queries: materialise a subquery's output as an input stream.

The executor migrates whole boxes whose inputs sit just behind the window
operators.  To study migrations of a *subplan* — a box whose inputs are
intermediate streams, the setting where Optimization 2 (shortened
``T_split``) pays off — the fixed upstream part can be run to completion
first and its output fed into a second executor as a pre-windowed source.

:func:`materialize` packages that pattern: it runs a box over its inputs,
collects the output stream, and reports the tight interval-length bound the
downstream executor needs for migration (``interval_bound``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..streams.sinks import CollectorSink
from ..streams.stream import PhysicalStream
from ..temporal.time import Time
from .box import Box
from .executor import QueryExecutor


@dataclass
class MaterializedStream:
    """A subquery's output, ready to feed a downstream executor.

    Attributes:
        stream: the collected output as an ordered physical stream.
        interval_bound: an upper bound on the validity lengths observed —
            pass it (or any larger value) as ``QueryExecutor``'s
            ``interval_bound`` together with ``window=0`` for this source.
        max_observed_length: the exact maximum validity length, for
            reporting how conservative the declared bound is.
    """

    stream: PhysicalStream
    interval_bound: Time
    max_observed_length: Time


def materialize(
    sources: Dict[str, PhysicalStream],
    windows: Dict[str, Time],
    box: Box,
    name: str = "intermediate",
    declared_bound: Optional[Time] = None,
) -> MaterializedStream:
    """Run ``box`` over ``sources`` and collect its output as a stream.

    Args:
        sources: raw input streams of the subquery.
        windows: per-source window sizes of the subquery.
        box: the subquery's physical plan.
        name: name given to the resulting stream.
        declared_bound: the worst-case validity bound a DSMS would declare
            for this intermediate stream (defaults to the subquery's
            ``max(window) + 1``, the bound snapshot-reducible operators
            guarantee).

    Returns:
        The materialised stream with its interval bounds.
    """
    executor = QueryExecutor(sources, windows, box)
    sink = CollectorSink(name)
    executor.add_sink(sink)
    executor.run()
    max_length: Time = 0
    for element in sink.elements:
        length = element.interval.length
        if length > max_length:
            max_length = length
    if declared_bound is None:
        declared_bound = max(windows.values()) + 1
    if max_length > declared_bound:
        raise ValueError(
            f"observed validity length {max_length} exceeds the declared "
            f"bound {declared_bound}"
        )
    return MaterializedStream(
        stream=sink.as_stream(),
        interval_bound=declared_bound,
        max_observed_length=max_length,
    )
