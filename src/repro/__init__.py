"""GenMig: dynamic plan migration for snapshot-equivalent continuous queries.

A from-scratch Python reproduction of

    Krämer, Yang, Cammert, Seeger, Papadias:
    "Dynamic Plan Migration for Snapshot-Equivalent Continuous Queries in
    Data Stream Systems", EDBT 2006.

The package contains a complete interval-based stream processing engine
(the substrate the paper's PIPES prototype provided), a positive-negative
twin implementation, a CQL front end, a cost-based re-optimizer — and, on
top, the paper's contribution: the **GenMig** migration strategy with its
two optimizations, next to the **Parallel Track** and **Moving States**
baselines of Zhu et al. (SIGMOD 2004).

Quickstart::

    from repro import (
        Catalog, CollectorSink, GenMig, PhysicalBuilder, QueryExecutor,
        compile_query, timestamped_stream,
    )

    catalog = Catalog({"bids": ("item", "price")})
    query = compile_query(
        "SELECT DISTINCT item FROM bids [RANGE 10 SECONDS] WHERE price > 10",
        catalog,
    )
    box = PhysicalBuilder().build(query.plan)
    executor = QueryExecutor(
        {"bids": timestamped_stream([(("a", 42), 0), (("b", 5), 7)])},
        query.windows,
        box,
    )
    sink = CollectorSink()
    executor.add_sink(sink)
    executor.run()
"""

from .core import (
    Coalesce,
    GenMig,
    MigrationReport,
    MigrationStrategy,
    MovingStates,
    ParallelTrack,
    ReferencePointGenMig,
    ShortenedGenMig,
    Split,
    UnsupportedPlanError,
)
from .cql import Catalog, compile_query
from .engine import (
    Box,
    GlobalOrderScheduler,
    MetricsRecorder,
    QueryExecutor,
    RoundRobinScheduler,
)
from .operators import CostMeter
from .plans import PhysicalBuilder, Query
from .service import (
    AutonomicController,
    ContinuousQueryService,
    ControllerPolicy,
    IngestHub,
    QueryEventLog,
    QueryRegistry,
)
from .streams import (
    CollectorSink,
    LatencySink,
    PhysicalStream,
    RateSink,
    explicit_stream,
    paper_workload,
    timestamped_stream,
    uniform_stream,
)
from .temporal import (
    Multiset,
    StreamElement,
    TimeInterval,
    element,
    first_divergence,
    snapshot,
    snapshot_equivalent,
)

__version__ = "1.0.0"

__all__ = [
    "AutonomicController",
    "Box",
    "Catalog",
    "Coalesce",
    "CollectorSink",
    "ContinuousQueryService",
    "ControllerPolicy",
    "CostMeter",
    "GenMig",
    "IngestHub",
    "QueryEventLog",
    "QueryRegistry",
    "GlobalOrderScheduler",
    "LatencySink",
    "MetricsRecorder",
    "MigrationReport",
    "MigrationStrategy",
    "MovingStates",
    "Multiset",
    "ParallelTrack",
    "PhysicalBuilder",
    "PhysicalStream",
    "Query",
    "QueryExecutor",
    "RateSink",
    "ReferencePointGenMig",
    "RoundRobinScheduler",
    "ShortenedGenMig",
    "Split",
    "StreamElement",
    "TimeInterval",
    "UnsupportedPlanError",
    "__version__",
    "compile_query",
    "element",
    "explicit_stream",
    "first_divergence",
    "paper_workload",
    "snapshot",
    "snapshot_equivalent",
    "timestamped_stream",
    "uniform_stream",
]
