"""Tokenizer for the CQL subset.

CQL [Arasu, Babu & Widom 2003] extends SQL with window specifications on
stream references.  The lexer is a straightforward single-pass scanner
producing a flat token list for the recursive-descent parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "AS",
    "AND",
    "OR",
    "NOT",
    "RANGE",
    "ROWS",
    "NOW",
    "UNBOUNDED",
    "MILLISECONDS",
    "SECONDS",
    "MINUTES",
    "HOURS",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
}

SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", "[", "]", ",", ".", "*", "+", "-", "/", "%")


class CQLSyntaxError(ValueError):
    """Raised on malformed CQL input, with position information."""

    def __init__(self, message: str, position: int, text: str) -> None:
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # KEYWORD, IDENT, NUMBER, STRING, SYMBOL, EOF
    value: str
    position: int

    def matches(self, kind: str, value: str = "") -> bool:
        if self.kind != kind:
            return False
        return not value or self.value == value


def tokenize(text: str) -> List[Token]:
    """Tokenize a CQL statement."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length and text[index + 1].isdigit()):
            start = index
            seen_dot = False
            while index < length and (text[index].isdigit() or (text[index] == "." and not seen_dot)):
                if text[index] == ".":
                    # A trailing dot is a qualifier, not a decimal point.
                    if index + 1 >= length or not text[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
            tokens.append(Token("NUMBER", text[start:index], start))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        if char == "'":
            end = text.find("'", index + 1)
            if end < 0:
                raise CQLSyntaxError("unterminated string literal", index, text)
            tokens.append(Token("STRING", text[index + 1 : end], index))
            index = end + 1
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token("SYMBOL", "!=" if symbol == "<>" else symbol, index))
                index += len(symbol)
                break
        else:
            raise CQLSyntaxError(f"unexpected character {char!r}", index, text)
    tokens.append(Token("EOF", "", length))
    return tokens
