"""Translate parsed CQL into logical plans.

The translator resolves stream and column references against a catalog of
registered stream schemas, places the window specifications with the
sources (Section 2.2: "window operators are placed downstream of the
source"), decomposes a conjunctive WHERE clause into per-source selections
and join predicates, and builds the initial left-deep join tree in FROM
order — the plan the optimizer may later reorder and GenMig may migrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..optimizer.rules import JoinGraph
from ..plans.expressions import (
    And,
    Arithmetic,
    Comparison,
    Expression,
    Field,
    Literal,
    Not,
    Or,
    conjuncts,
)
from ..plans.logical import (
    AggregateNode,
    AggregateSpec,
    DistinctNode,
    LogicalPlan,
    ProjectNode,
    Query,
    SelectNode,
    Source,
)
from ..temporal.time import Time
from .ast import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    ExprAST,
    NumberLiteral,
    SelectStatement,
    StringLiteral,
    UnaryOp,
)
from .parser import parse


class TranslationError(ValueError):
    """Raised when a parsed query cannot be bound against the catalog."""


class Catalog:
    """Registered stream schemas: stream name → column names."""

    def __init__(self, schemas: Optional[Dict[str, Sequence[str]]] = None) -> None:
        self._schemas: Dict[str, Tuple[str, ...]] = {}
        for name, columns in (schemas or {}).items():
            self.register(name, columns)

    def register(self, name: str, columns: Sequence[str]) -> None:
        """Register (or replace) a stream schema."""
        if not columns:
            raise ValueError(f"stream {name!r} needs at least one column")
        self._schemas[name] = tuple(columns)

    def columns(self, name: str) -> Tuple[str, ...]:
        try:
            return self._schemas[name]
        except KeyError:
            raise TranslationError(f"unknown stream {name!r}") from None

    def schemas(self) -> Dict[str, Tuple[str, ...]]:
        """All registered schemas, name → columns (a copy)."""
        return dict(self._schemas)

    def __contains__(self, name: str) -> bool:
        return name in self._schemas


class Translator:
    """Binds one parsed statement to a :class:`Query`."""

    def __init__(self, catalog: Catalog, default_window: Optional[Time] = None) -> None:
        self.catalog = catalog
        self.default_window = default_window

    def translate(self, statement: SelectStatement) -> Query:
        bindings = self._bind_sources(statement)
        windows = self._windows(statement)
        plan = self._from_where(statement, bindings)
        plan = self._select_list(statement, plan, bindings)
        if statement.distinct:
            plan = DistinctNode(plan)
        return Query(plan=plan, windows=windows)

    # ------------------------------------------------------------------ #
    # FROM clause
    # ------------------------------------------------------------------ #

    def _bind_sources(self, statement: SelectStatement) -> Dict[str, Source]:
        bindings: Dict[str, Source] = {}
        for item in statement.from_items:
            if item.binding in bindings:
                raise TranslationError(f"duplicate stream binding {item.binding!r}")
            columns = self.catalog.columns(item.stream)
            bindings[item.binding] = Source(item.binding, columns)
        return bindings

    def _windows(self, statement: SelectStatement) -> Dict[str, Time]:
        windows: Dict[str, Time] = {}
        for item in statement.from_items:
            spec = item.window
            if spec is None:
                if self.default_window is None:
                    raise TranslationError(
                        f"stream {item.binding!r} needs a window specification "
                        f"(e.g. [RANGE 10 SECONDS]) or a default window"
                    )
                windows[item.binding] = self.default_window
            elif spec.kind == "range":
                windows[item.binding] = spec.size
            elif spec.kind == "now":
                windows[item.binding] = 0
            else:
                raise TranslationError(
                    f"{spec.kind.upper()} windows parse but are not executable "
                    f"in this engine; use time-based RANGE windows"
                )
        return windows

    def _from_where(
        self, statement: SelectStatement, bindings: Dict[str, Source]
    ) -> LogicalPlan:
        where = (
            self._expression(statement.where, bindings)
            if statement.where is not None
            else None
        )
        leaves: List[LogicalPlan] = list(bindings.values())
        if where is None:
            predicates: List[Expression] = []
        else:
            predicates = list(conjuncts(where))

        # Push single-source conjuncts onto their source.
        remaining: List[Expression] = []
        dressed: List[LogicalPlan] = []
        for leaf in leaves:
            own = [p for p in predicates if p.columns() <= set(leaf.schema) and p.columns()]
            predicates = [p for p in predicates if p not in own]
            dressed.append(SelectNode(leaf, And(*own)) if own else leaf)
        remaining = predicates

        if len(dressed) == 1:
            plan = dressed[0]
            if remaining:
                plan = SelectNode(plan, And(*remaining))
            return plan
        graph = JoinGraph(dressed, remaining)
        return graph.build(list(range(len(dressed))))

    # ------------------------------------------------------------------ #
    # SELECT clause
    # ------------------------------------------------------------------ #

    def _select_list(
        self,
        statement: SelectStatement,
        plan: LogicalPlan,
        bindings: Dict[str, Source],
    ) -> LogicalPlan:
        if statement.items is None:
            if statement.group_by:
                raise TranslationError("SELECT * cannot be combined with GROUP BY")
            return plan

        aggregating = (
            any(isinstance(item.expression, AggregateCall) for item in statement.items)
            or bool(statement.group_by)
            or statement.having is not None
        )
        if not aggregating:
            outputs = []
            for index, item in enumerate(statement.items):
                expression = self._expression(item.expression, bindings)
                name = item.alias or self._default_name(item.expression, index)
                outputs.append((expression, name))
            return ProjectNode(plan, outputs)
        return self._aggregate_select(statement, plan, bindings)

    def _aggregate_select(
        self,
        statement: SelectStatement,
        plan: LogicalPlan,
        bindings: Dict[str, Source],
    ) -> LogicalPlan:
        group_by = [
            self._resolve(column, bindings) for column in statement.group_by
        ]
        specs: List[AggregateSpec] = []
        outputs: List[Tuple[Expression, str]] = []
        for index, item in enumerate(statement.items):
            expression = item.expression
            if isinstance(expression, AggregateCall):
                column = (
                    self._resolve(expression.argument, bindings)
                    if expression.argument is not None
                    else None
                )
                spec = AggregateSpec(expression.function, column)
                specs.append(spec)
                name = item.alias or spec.output_name()
                outputs.append((Field(spec.output_name()), name))
            elif isinstance(expression, ColumnRef):
                resolved = self._resolve(expression, bindings)
                if resolved not in group_by:
                    raise TranslationError(
                        f"column {resolved!r} must appear in GROUP BY to be selected "
                        f"alongside aggregates"
                    )
                outputs.append((Field(resolved), item.alias or str(expression)))
            else:
                raise TranslationError(
                    "SELECT items must be plain columns or aggregate calls "
                    "when aggregating"
                )
        having = None
        if statement.having is not None:
            # Aggregates referenced only in HAVING must be computed too.
            having = self._having_expression(
                statement.having, bindings, group_by, specs
            )
        if not specs:
            raise TranslationError(
                "GROUP BY requires at least one aggregate in SELECT or HAVING"
            )
        aggregated = AggregateNode(plan, specs, group_by)
        if having is not None:
            aggregated = SelectNode(aggregated, having)
        if tuple(name for _, name in outputs) == aggregated.schema and all(
            isinstance(expr, Field) and expr.name == name for expr, name in outputs
        ):
            return aggregated
        return ProjectNode(aggregated, outputs)

    def _having_expression(
        self,
        node: ExprAST,
        bindings: Dict[str, Source],
        group_by: List[str],
        specs: List[AggregateSpec],
    ) -> Expression:
        """Translate a HAVING predicate against the aggregation output.

        Plain columns must be grouping columns; aggregate calls resolve to
        their output column, and are appended to ``specs`` when the SELECT
        list did not already compute them.
        """
        if isinstance(node, ColumnRef):
            resolved = self._resolve(node, bindings)
            if resolved not in group_by:
                raise TranslationError(
                    f"HAVING may only reference grouping columns or "
                    f"aggregates; {resolved!r} is neither"
                )
            return Field(resolved)
        if isinstance(node, AggregateCall):
            column = (
                self._resolve(node.argument, bindings)
                if node.argument is not None
                else None
            )
            spec = AggregateSpec(node.function, column)
            if spec not in specs:
                specs.append(spec)
            return Field(spec.output_name())
        if isinstance(node, (NumberLiteral, StringLiteral)):
            return Literal(node.value)
        if isinstance(node, UnaryOp):
            inner = self._having_expression(node.operand, bindings, group_by, specs)
            if node.op == "NOT":
                return Not(inner)
            return Arithmetic("-", Literal(0), inner)
        if isinstance(node, BinaryOp):
            left = self._having_expression(node.left, bindings, group_by, specs)
            right = self._having_expression(node.right, bindings, group_by, specs)
            if node.op == "AND":
                return And(left, right)
            if node.op == "OR":
                return Or(left, right)
            if node.op in ("=", "!=", "<", "<=", ">", ">="):
                return Comparison(node.op, left, right)
            return Arithmetic(node.op, left, right)
        raise TranslationError(f"cannot translate HAVING expression {node!r}")

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def _expression(self, node: ExprAST, bindings: Dict[str, Source]) -> Expression:
        if isinstance(node, ColumnRef):
            return Field(self._resolve(node, bindings))
        if isinstance(node, NumberLiteral):
            return Literal(node.value)
        if isinstance(node, StringLiteral):
            return Literal(node.value)
        if isinstance(node, AggregateCall):
            raise TranslationError("aggregate calls are only allowed in the SELECT list")
        if isinstance(node, UnaryOp):
            if node.op == "NOT":
                return Not(self._expression(node.operand, bindings))
            return Arithmetic("-", Literal(0), self._expression(node.operand, bindings))
        if isinstance(node, BinaryOp):
            left = self._expression(node.left, bindings)
            right = self._expression(node.right, bindings)
            if node.op == "AND":
                return And(left, right)
            if node.op == "OR":
                return Or(left, right)
            if node.op in ("=", "!=", "<", "<=", ">", ">="):
                return Comparison(node.op, left, right)
            return Arithmetic(node.op, left, right)
        raise TranslationError(f"cannot translate expression {node!r}")

    def _resolve(self, column: ColumnRef, bindings: Dict[str, Source]) -> str:
        if column.qualifier is not None:
            source = bindings.get(column.qualifier)
            if source is None:
                raise TranslationError(f"unknown stream binding {column.qualifier!r}")
            qualified = f"{column.qualifier}.{column.name}"
            if qualified not in source.schema:
                raise TranslationError(
                    f"stream {column.qualifier!r} has no column {column.name!r}"
                )
            return qualified
        matches = [
            qualified
            for source in bindings.values()
            for qualified in source.schema
            if qualified.split(".", 1)[1] == column.name
        ]
        if not matches:
            raise TranslationError(f"unknown column {column.name!r}")
        if len(matches) > 1:
            raise TranslationError(
                f"ambiguous column {column.name!r}: matches {sorted(matches)}"
            )
        return matches[0]

    def _default_name(self, expression: ExprAST, index: int) -> str:
        if isinstance(expression, ColumnRef):
            return str(expression) if expression.qualifier else expression.name
        return f"column{index}"


def compile_query(
    text: str,
    catalog: Catalog,
    time_scale: int = 1000,
    default_window: Optional[Time] = None,
) -> Query:
    """Parse and translate one CQL statement into an executable query."""
    statement = parse(text, time_scale=time_scale)
    return Translator(catalog, default_window=default_window).translate(statement)
