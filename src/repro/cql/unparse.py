"""Render CQL ASTs back to query text, and explain compiled queries.

``unparse`` produces canonical CQL text from a parsed statement — used for
logging, for EXPLAIN output, and by the parser round-trip property tests.
``explain`` renders a compiled query's logical plan together with the cost
model's estimates, the closest thing a DSMS offers to ``EXPLAIN``.
"""

from __future__ import annotations

from typing import Optional

from ..engine.statistics import StatisticsCatalog
from ..optimizer.cost import CostModel
from ..plans.logical import LogicalPlan, Query
from .ast import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    ExprAST,
    FromItem,
    NumberLiteral,
    SelectStatement,
    StringLiteral,
    UnaryOp,
    WindowSpec,
)

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}


def unparse_expression(node: ExprAST, parent_precedence: int = 0) -> str:
    """Render one expression, parenthesising only where precedence demands."""
    if isinstance(node, ColumnRef):
        return str(node)
    if isinstance(node, NumberLiteral):
        return repr(node.value)
    if isinstance(node, StringLiteral):
        return f"'{node.value}'"
    if isinstance(node, AggregateCall):
        inner = str(node.argument) if node.argument is not None else "*"
        return f"{node.function.upper()}({inner})"
    if isinstance(node, UnaryOp):
        if node.op == "NOT":
            return f"NOT {unparse_expression(node.operand, _PRECEDENCE['AND'])}"
        return f"-{unparse_expression(node.operand, 6)}"
    if isinstance(node, BinaryOp):
        precedence = _PRECEDENCE[node.op]
        left = unparse_expression(node.left, precedence)
        right = unparse_expression(node.right, precedence + 1)
        rendered = f"{left} {node.op} {right}"
        if precedence < parent_precedence:
            return f"({rendered})"
        return rendered
    raise TypeError(f"cannot unparse {type(node).__name__}")


def _unparse_window(window: Optional[WindowSpec]) -> str:
    if window is None:
        return ""
    if window.kind == "now":
        return " [NOW]"
    if window.kind == "unbounded":
        return " [UNBOUNDED]"
    if window.kind == "rows":
        return f" [ROWS {window.size}]"
    return f" [RANGE {window.size}]"


def _unparse_from_item(item: FromItem) -> str:
    rendered = item.stream + _unparse_window(item.window)
    if item.alias:
        rendered += f" AS {item.alias}"
    return rendered


def unparse(statement: SelectStatement) -> str:
    """Render a statement as canonical CQL text.

    Window sizes are printed in chronons (no unit keyword), so parsing the
    result with any ``time_scale`` reproduces the same statement.
    """
    parts = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    if statement.items is None:
        parts.append("*")
    else:
        parts.append(
            ", ".join(
                unparse_expression(item.expression)
                + (f" AS {item.alias}" if item.alias else "")
                for item in statement.items
            )
        )
    parts.append("FROM")
    parts.append(", ".join(_unparse_from_item(item) for item in statement.from_items))
    if statement.where is not None:
        parts.append("WHERE")
        parts.append(unparse_expression(statement.where))
    if statement.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(str(column) for column in statement.group_by))
    if statement.having is not None:
        parts.append("HAVING")
        parts.append(unparse_expression(statement.having))
    return " ".join(parts)


def explain(
    query: Query,
    statistics: Optional[StatisticsCatalog] = None,
    cost_model: Optional[CostModel] = None,
) -> str:
    """Render a compiled query: windows, plan tree, per-node estimates."""
    cost_model = cost_model or CostModel()
    statistics = statistics or StatisticsCatalog()
    lines = ["windows:"]
    for source, window in sorted(query.windows.items()):
        lines.append(f"  {source}: RANGE {window}")
    lines.append("plan:")

    def render(node: LogicalPlan, indent: int) -> None:
        estimate = cost_model.estimate(query, node, statistics)
        lines.append(
            "  " * (indent + 1)
            + f"{_shallow_label(node)}   "
            + f"[rate={estimate.rate:.4f}/u state={estimate.state:.1f} "
            + f"cost={estimate.cost:.2f}/u]"
        )
        for child in node.children:
            render(child, indent + 1)

    render(query.plan, 0)
    return "\n".join(lines)


def _shallow_label(node: LogicalPlan) -> str:
    """One-line label of a node without rendering its whole subtree."""
    from ..plans.logical import (
        AggregateNode,
        DifferenceNode,
        DistinctNode,
        JoinNode,
        ProjectNode,
        SelectNode,
        Source,
        UnionNode,
    )

    if isinstance(node, Source):
        return node.name
    if isinstance(node, SelectNode):
        return f"select[{node.predicate!r}]"
    if isinstance(node, ProjectNode):
        return f"project[{', '.join(node.schema)}]"
    if isinstance(node, JoinNode):
        condition = repr(node.condition) if node.condition is not None else "true"
        return f"join[{condition}]"
    if isinstance(node, DistinctNode):
        return "distinct"
    if isinstance(node, AggregateNode):
        aggregates = ", ".join(spec.output_name() for spec in node.aggregates)
        group = f" by {list(node.group_by)}" if node.group_by else ""
        return f"aggregate[{aggregates}{group}]"
    if isinstance(node, UnionNode):
        return "union"
    if isinstance(node, DifferenceNode):
        return "difference"
    return type(node).__name__
