"""Recursive-descent parser for the CQL subset.

Grammar (informally)::

    query      := SELECT [DISTINCT] select_list FROM from_list
                  [WHERE expr] [GROUP BY column (',' column)*] [HAVING expr]
    select_list:= '*' | item (',' item)*          item := expr [AS ident]
    from_list  := from_item (',' from_item)*
    from_item  := ident ['[' window ']'] [[AS] ident]
    window     := RANGE number [unit] | ROWS number | NOW | UNBOUNDED
    unit       := MILLISECONDS | SECONDS | MINUTES | HOURS
    expr       := or; or := and (OR and)*; and := not (AND not)*
    not        := NOT not | cmp
    cmp        := add [cmp_op add]          cmp_op := = != < <= > >=
    add        := mul (('+'|'-') mul)*      mul := unary (('*'|'/'|'%') unary)*
    unary      := '-' unary | atom
    atom       := number | string | aggregate | column | '(' expr ')'
    aggregate  := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | column) ')'
    column     := ident ['.' ident]

Window sizes are scaled by ``time_scale`` chronons per second (default
1000, i.e. millisecond chronons), so ``[RANGE 10 SECONDS]`` with the
default scale yields a 10 000-chronon window.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    ExprAST,
    FromItem,
    NumberLiteral,
    SelectItem,
    SelectStatement,
    StringLiteral,
    UnaryOp,
    WindowSpec,
)
from .lexer import CQLSyntaxError, Token, tokenize

_UNIT_SECONDS = {
    "MILLISECONDS": 0.001,
    "SECONDS": 1.0,
    "MINUTES": 60.0,
    "HOURS": 3600.0,
}

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class Parser:
    """Parses one CQL statement into a :class:`SelectStatement`."""

    def __init__(self, text: str, time_scale: int = 1000) -> None:
        self.text = text
        self.time_scale = time_scale
        self.tokens: List[Token] = tokenize(text)
        self.position = 0

    # ------------------------------------------------------------------ #
    # Token plumbing
    # ------------------------------------------------------------------ #

    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def _accept(self, kind: str, value: str = "") -> Optional[Token]:
        if self._peek().matches(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str = "") -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            expected = value or kind
            raise CQLSyntaxError(
                f"expected {expected}, found {token.value or token.kind!r}",
                token.position,
                self.text,
            )
        return self._advance()

    def _error(self, message: str) -> CQLSyntaxError:
        return CQLSyntaxError(message, self._peek().position, self.text)

    # ------------------------------------------------------------------ #
    # Grammar
    # ------------------------------------------------------------------ #

    def parse(self) -> SelectStatement:
        """Parse the full statement; input must be fully consumed."""
        self._expect("KEYWORD", "SELECT")
        distinct = self._accept("KEYWORD", "DISTINCT") is not None
        items = self._select_list()
        self._expect("KEYWORD", "FROM")
        from_items = [self._from_item()]
        while self._accept("SYMBOL", ","):
            from_items.append(self._from_item())
        where = None
        if self._accept("KEYWORD", "WHERE"):
            where = self._expression()
        group_by: List[ColumnRef] = []
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            group_by.append(self._column())
            while self._accept("SYMBOL", ","):
                group_by.append(self._column())
        having = None
        if self._accept("KEYWORD", "HAVING"):
            having = self._expression()
        self._expect("EOF")
        return SelectStatement(
            distinct=distinct,
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
        )

    def _select_list(self) -> Optional[List[SelectItem]]:
        if self._accept("SYMBOL", "*"):
            return None
        items = [self._select_item()]
        while self._accept("SYMBOL", ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expression = self._expression()
        alias = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect("IDENT").value
        return SelectItem(expression, alias)

    def _from_item(self) -> FromItem:
        stream = self._expect("IDENT").value
        window = None
        if self._accept("SYMBOL", "["):
            window = self._window()
            self._expect("SYMBOL", "]")
        alias = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect("IDENT").value
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return FromItem(stream, window, alias)

    def _window(self) -> WindowSpec:
        if self._accept("KEYWORD", "NOW"):
            return WindowSpec("now")
        if self._accept("KEYWORD", "UNBOUNDED"):
            return WindowSpec("unbounded")
        if self._accept("KEYWORD", "ROWS"):
            count = self._number()
            return WindowSpec("rows", int(count))
        self._expect("KEYWORD", "RANGE")
        amount = self._number()
        scale = 1.0
        for unit, seconds in _UNIT_SECONDS.items():
            if self._accept("KEYWORD", unit):
                scale = seconds * self.time_scale
                break
        size = int(round(amount * scale))
        return WindowSpec("range", size)

    def _number(self) -> float:
        token = self._expect("NUMBER")
        return float(token.value) if "." in token.value else int(token.value)

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #

    def _expression(self) -> ExprAST:
        return self._or()

    def _or(self) -> ExprAST:
        left = self._and()
        while self._accept("KEYWORD", "OR"):
            left = BinaryOp("OR", left, self._and())
        return left

    def _and(self) -> ExprAST:
        left = self._not()
        while self._accept("KEYWORD", "AND"):
            left = BinaryOp("AND", left, self._not())
        return left

    def _not(self) -> ExprAST:
        if self._accept("KEYWORD", "NOT"):
            return UnaryOp("NOT", self._not())
        return self._comparison()

    def _comparison(self) -> ExprAST:
        left = self._additive()
        for op in ("<=", ">=", "!=", "=", "<", ">"):
            if self._accept("SYMBOL", op):
                return BinaryOp(op, left, self._additive())
        return left

    def _additive(self) -> ExprAST:
        left = self._multiplicative()
        while True:
            if self._accept("SYMBOL", "+"):
                left = BinaryOp("+", left, self._multiplicative())
            elif self._accept("SYMBOL", "-"):
                left = BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ExprAST:
        left = self._unary()
        while True:
            if self._accept("SYMBOL", "*"):
                left = BinaryOp("*", left, self._unary())
            elif self._accept("SYMBOL", "/"):
                left = BinaryOp("/", left, self._unary())
            elif self._accept("SYMBOL", "%"):
                left = BinaryOp("%", left, self._unary())
            else:
                return left

    def _unary(self) -> ExprAST:
        if self._accept("SYMBOL", "-"):
            return UnaryOp("-", self._unary())
        return self._atom()

    def _atom(self) -> ExprAST:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return NumberLiteral(value)
        if token.kind == "STRING":
            self._advance()
            return StringLiteral(token.value)
        if token.kind == "KEYWORD" and token.value in _AGGREGATES:
            return self._aggregate()
        if token.kind == "IDENT":
            return self._column()
        if self._accept("SYMBOL", "("):
            inner = self._expression()
            self._expect("SYMBOL", ")")
            return inner
        raise self._error(f"unexpected token {token.value or token.kind!r}")

    def _aggregate(self) -> AggregateCall:
        function = self._advance().value.lower()
        self._expect("SYMBOL", "(")
        if self._accept("SYMBOL", "*"):
            if function != "count":
                raise self._error(f"{function.upper()}(*) is not defined")
            argument = None
        else:
            argument = self._column()
        self._expect("SYMBOL", ")")
        return AggregateCall(function, argument)

    def _column(self) -> ColumnRef:
        first = self._expect("IDENT").value
        if self._accept("SYMBOL", "."):
            second = self._expect("IDENT").value
            return ColumnRef(first, second)
        return ColumnRef(None, first)


def parse(text: str, time_scale: int = 1000) -> SelectStatement:
    """Parse one CQL statement."""
    return Parser(text, time_scale).parse()
