"""Abstract syntax tree of the CQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference: ``x`` or ``s.x``."""

    qualifier: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class NumberLiteral:
    """An integer or float literal."""

    value: Union[int, float]


@dataclass(frozen=True)
class StringLiteral:
    """A string literal."""

    value: str


@dataclass(frozen=True)
class BinaryOp:
    """A binary operator application (comparison, arithmetic, AND/OR)."""

    op: str
    left: "ExprAST"
    right: "ExprAST"


@dataclass(frozen=True)
class UnaryOp:
    """A unary operator application (NOT, unary minus)."""

    op: str
    operand: "ExprAST"


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate function call: ``COUNT(*)``, ``SUM(s.x)``, ..."""

    function: str  # lowercase: count/sum/avg/min/max
    argument: Optional[ColumnRef]  # None means '*'


ExprAST = Union[ColumnRef, NumberLiteral, StringLiteral, BinaryOp, UnaryOp, AggregateCall]


@dataclass(frozen=True)
class WindowSpec:
    """A window clause on a stream reference."""

    kind: str  # "range", "now", "unbounded", "rows"
    size: int = 0  # time units for range (already unit-scaled), rows count


@dataclass(frozen=True)
class FromItem:
    """One stream reference in the FROM clause."""

    stream: str
    window: Optional[WindowSpec]
    alias: Optional[str]

    @property
    def binding(self) -> str:
        """The name this stream is visible as in the query."""
        return self.alias or self.stream


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry with an optional output alias."""

    expression: ExprAST
    alias: Optional[str]


@dataclass
class SelectStatement:
    """A full parsed query."""

    distinct: bool
    items: Optional[List[SelectItem]]  # None means '*'
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[ExprAST] = None
    group_by: List[ColumnRef] = field(default_factory=list)
    having: Optional[ExprAST] = None
