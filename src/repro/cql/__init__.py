"""A CQL front end: parse sliding-window continuous queries to logical plans.

GenMig's claim is the dynamic optimization of *arbitrary CQL queries*; this
package provides the concrete path from query text to an executable box::

    catalog = Catalog({"bids": ("item", "price")})
    query = compile_query(
        "SELECT DISTINCT item FROM bids [RANGE 10 SECONDS] WHERE price > 100",
        catalog,
    )
    box = PhysicalBuilder().build(query.plan)
"""

from .ast import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    FromItem,
    NumberLiteral,
    SelectItem,
    SelectStatement,
    StringLiteral,
    UnaryOp,
    WindowSpec,
)
from .lexer import CQLSyntaxError, Token, tokenize
from .parser import Parser, parse
from .translate import Catalog, TranslationError, Translator, compile_query
from .unparse import explain, unparse, unparse_expression

__all__ = [
    "AggregateCall",
    "BinaryOp",
    "CQLSyntaxError",
    "Catalog",
    "ColumnRef",
    "FromItem",
    "NumberLiteral",
    "Parser",
    "SelectItem",
    "SelectStatement",
    "StringLiteral",
    "Token",
    "TranslationError",
    "Translator",
    "UnaryOp",
    "WindowSpec",
    "compile_query",
    "explain",
    "parse",
    "tokenize",
    "unparse",
    "unparse_expression",
]
