"""A rate/state cost model for continuous query plans.

Continuous queries are priced per unit of application time, not per tuple
set: each operator contributes a processing cost proportional to its input
rates and probed state sizes, and holds state proportional to rate × window
(the steady-state size under temporal expiration).  The estimates consume
the runtime statistics catalog (rates, selectivities) — the "plethora of
runtime statistics" the paper's introduction attributes to the DSMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..engine.statistics import StatisticsCatalog
from ..plans.logical import (
    AggregateNode,
    DifferenceNode,
    DistinctNode,
    JoinNode,
    LogicalPlan,
    ProjectNode,
    Query,
    SelectNode,
    Source,
    UnionNode,
)
from ..temporal.time import Time


@dataclass
class Estimate:
    """Per-unit-time estimates for one plan node."""

    rate: float
    state: float
    cost: float


class CostModel:
    """Estimates steady-state CPU cost per unit time for a plan.

    Args:
        join_cost: cost units per join candidate comparison (matches the
            ``PhysicalBuilder`` knob).
        default_selectivity: join/filter selectivity assumed when the
            statistics catalog has no observation for a predicate.
        distinct_rate_factor: assumed fraction of input rate surviving
            duplicate elimination.
    """

    def __init__(
        self,
        join_cost: int = 1,
        default_selectivity: float = 0.01,
        distinct_rate_factor: float = 0.5,
    ) -> None:
        self.join_cost = join_cost
        self.default_selectivity = default_selectivity
        self.distinct_rate_factor = distinct_rate_factor

    def cost(
        self,
        query: Query,
        plan: Optional[LogicalPlan] = None,
        statistics: Optional[StatisticsCatalog] = None,
    ) -> float:
        """Total estimated cost per unit time of running ``plan``."""
        return self.estimate(query, plan, statistics).cost

    def estimate(
        self,
        query: Query,
        plan: Optional[LogicalPlan] = None,
        statistics: Optional[StatisticsCatalog] = None,
    ) -> Estimate:
        """Full (rate, state, cost) estimate for ``plan``."""
        plan = plan if plan is not None else query.plan
        statistics = statistics or StatisticsCatalog()
        return self._estimate(plan, query.windows, statistics)

    def _estimate(
        self, plan: LogicalPlan, windows: Dict[str, Time], statistics: StatisticsCatalog
    ) -> Estimate:
        if isinstance(plan, Source):
            rate = statistics.rate_of(plan.name).rate
            window = windows[plan.name]
            return Estimate(rate=rate, state=rate * (window + 1), cost=0.0)

        children = [self._estimate(child, windows, statistics) for child in plan.children]

        if isinstance(plan, SelectNode):
            selectivity = self._selectivity(repr(plan.predicate), statistics)
            child = children[0]
            return Estimate(
                rate=child.rate * selectivity,
                state=child.state * selectivity,
                cost=child.cost + child.rate,
            )
        if isinstance(plan, ProjectNode):
            child = children[0]
            return Estimate(child.rate, child.state, child.cost + child.rate)
        if isinstance(plan, JoinNode):
            left, right = children
            if plan.condition is None:
                # A cross product keeps every pair: selectivity is exactly 1.
                selectivity = 1.0
            else:
                selectivity = self._selectivity(repr(plan.condition), statistics)
            probes = left.rate * right.state + right.rate * left.state
            out_rate = probes * selectivity
            out_state = left.state * right.state * selectivity
            cost = left.cost + right.cost + probes * self.join_cost + out_rate
            return Estimate(out_rate, out_state, cost)
        if isinstance(plan, DistinctNode):
            child = children[0]
            factor = self.distinct_rate_factor
            return Estimate(child.rate * factor, child.state * factor, child.cost + child.rate)
        if isinstance(plan, AggregateNode):
            child = children[0]
            groups = max(1.0, child.state * self.distinct_rate_factor) if plan.group_by else 1.0
            # Every input boundary can change the aggregate: two output
            # changes per element (start and end of its validity).
            out_rate = min(child.rate * 2.0, child.rate * 2.0 * groups)
            return Estimate(out_rate, child.state, child.cost + child.rate * 2.0)
        if isinstance(plan, UnionNode):
            left, right = children
            return Estimate(
                left.rate + right.rate,
                left.state + right.state,
                left.cost + right.cost + left.rate + right.rate,
            )
        if isinstance(plan, DifferenceNode):
            left, right = children
            return Estimate(
                left.rate,
                left.state + right.state,
                left.cost + right.cost + left.rate + right.rate,
            )
        raise TypeError(f"cannot estimate {type(plan).__name__}")

    def _selectivity(self, key: str, statistics: StatisticsCatalog) -> float:
        estimator = statistics.selectivities.get(key)
        if estimator is None:
            return self.default_selectivity
        return estimator.selectivity
