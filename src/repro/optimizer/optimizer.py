"""The re-optimizer: statistics → candidate plans → dynamic migration.

This closes the loop the paper's introduction describes: the DSMS monitors
runtime statistics, the optimizer re-optimizes the logical plan with the
conventional transformation rules (sound because all operators are
snapshot-reducible), and — when a sufficiently better plan exists — the
running box is replaced via a dynamic plan migration strategy, GenMig by
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.genmig import GenMig
from ..core.strategy import MigrationStrategy
from ..engine.executor import QueryExecutor
from ..engine.statistics import StatisticsCatalog
from ..plans.logical import LogicalPlan, Query
from ..plans.physical import PhysicalBuilder
from .cost import CostModel
from .rules import join_orders, push_down_distinct, push_down_selections


@dataclass
class OptimizationDecision:
    """What the re-optimizer decided for one consideration round.

    ``reason`` explains a non-migration outcome: ``None`` while migrating,
    otherwise one of ``"no-better-plan"``, ``"below-threshold"``,
    ``"cold-statistics"``, ``"migration-cost"`` or ``"migration-in-flight"``.
    """

    current_cost: float
    best_cost: float
    chosen: Optional[LogicalPlan]
    candidates_considered: int
    reason: Optional[str] = None
    migration_cost: float = 0.0
    projected_savings: float = 0.0
    #: The chosen plan's static-analysis verdict
    #: (:class:`~repro.analysis.plan_verifier.PlanVerdict`), or ``None``
    #: when no plan was chosen.
    verdict: Optional[object] = None

    @property
    def migrate(self) -> bool:
        return self.chosen is not None


class ReOptimizer:
    """Plan re-optimization driving dynamic migration.

    Args:
        builder: logical-to-physical compiler for the new box.
        cost_model: the plan cost model.
        strategy_factory: builds a fresh migration strategy per migration
            (default: GenMig).
        improvement_threshold: migrate only when the best candidate costs
            less than ``threshold`` times the current plan — re-optimization
            is not free, so small wins are ignored.
        min_observations: minimum arrivals every source must have on record
            before a decision is trusted; below it the statistics are cold
            (``RateEstimator.rate`` is 0.0 before its second observation)
            and the round records a ``"cold-statistics"`` skip.
        migration_cost_per_value: cost units charged per payload value held
            in the current plan's estimated state — a proxy for the work of
            running two plans in parallel while that state drains.  0.0
            disables the migration-cost veto.
        savings_horizon: application time over which the per-unit-time cost
            advantage must amortise the migration cost.
    """

    def __init__(
        self,
        builder: Optional[PhysicalBuilder] = None,
        cost_model: Optional[CostModel] = None,
        strategy_factory: Callable[[], MigrationStrategy] = GenMig,
        improvement_threshold: float = 0.8,
        min_observations: int = 2,
        migration_cost_per_value: float = 0.0,
        savings_horizon: float = 1000.0,
    ) -> None:
        self.builder = builder or PhysicalBuilder()
        self.cost_model = cost_model or CostModel()
        self.strategy_factory = strategy_factory
        self.improvement_threshold = improvement_threshold
        self.min_observations = min_observations
        self.migration_cost_per_value = migration_cost_per_value
        self.savings_horizon = savings_horizon
        self.decisions: List[OptimizationDecision] = []

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #

    def candidates(self, plan: LogicalPlan) -> List[LogicalPlan]:
        """Equivalent plans produced by the transformation rules.

        Every candidate is vetted by the plan verifier before it competes
        on cost: a transformation-rule bug that breaks schema propagation
        is caught here as a dropped candidate instead of a corrupt plan
        installed into a running query.
        """
        from ..analysis.plan_verifier import verify_plan

        seeds = [plan, push_down_selections(plan), push_down_distinct(plan)]
        alternatives: List[LogicalPlan] = []
        seen = set()
        for seed in seeds:
            for candidate in [seed] + join_orders(seed):
                signature = candidate.signature()
                if signature not in seen:
                    seen.add(signature)
                    if verify_plan(candidate).ok:
                        alternatives.append(candidate)
        return alternatives

    # ------------------------------------------------------------------ #
    # Decision and migration
    # ------------------------------------------------------------------ #

    def decide(
        self,
        query: Query,
        current: LogicalPlan,
        statistics: StatisticsCatalog,
    ) -> OptimizationDecision:
        """Pick the cheapest equivalent plan; decide whether to migrate."""
        if not statistics.ready(set(current.sources()), self.min_observations):
            decision = OptimizationDecision(
                current_cost=self.cost_model.cost(query, current, statistics),
                best_cost=0.0,
                chosen=None,
                candidates_considered=0,
                reason="cold-statistics",
            )
            self.decisions.append(decision)
            return decision

        current_cost = self.cost_model.cost(query, current, statistics)
        best_plan: Optional[LogicalPlan] = None
        best_cost = current_cost
        alternatives = self.candidates(current)
        for candidate in alternatives:
            if candidate.signature() == current.signature():
                continue
            cost = self.cost_model.cost(query, candidate, statistics)
            if cost < best_cost:
                best_cost = cost
                best_plan = candidate
        reason: Optional[str] = "no-better-plan" if best_plan is None else None
        if best_plan is not None and best_cost >= current_cost * self.improvement_threshold:
            best_plan = None
            reason = "below-threshold"
        migration_cost = 0.0
        projected_savings = 0.0
        if best_plan is not None and self.migration_cost_per_value > 0.0:
            # Weigh the state that must drain from the running plan against
            # the cost advantage projected over the amortisation horizon —
            # the "to migrate or not to migrate" trade-off.
            state = self.cost_model.estimate(query, current, statistics).state
            migration_cost = state * self.migration_cost_per_value
            projected_savings = (current_cost - best_cost) * self.savings_horizon
            if projected_savings <= migration_cost:
                best_plan = None
                reason = "migration-cost"
        verdict = None
        if best_plan is not None:
            from ..analysis.plan_verifier import verify_plan

            verdict = verify_plan(best_plan)
        decision = OptimizationDecision(
            current_cost=current_cost,
            best_cost=best_cost,
            chosen=best_plan,
            candidates_considered=len(alternatives),
            reason=reason,
            migration_cost=migration_cost,
            projected_savings=projected_savings,
            verdict=verdict,
        )
        self.decisions.append(decision)
        return decision

    def reoptimize(
        self,
        executor: QueryExecutor,
        query: Query,
        current: LogicalPlan,
    ) -> Optional[LogicalPlan]:
        """One re-optimization round against a running executor.

        Uses the executor's live statistics; when a better plan is found,
        builds its box and starts a dynamic migration immediately.  Returns
        the newly installed logical plan, or ``None`` when no migration was
        triggered.  A round that lands while a migration is still in flight
        is skipped and recorded — never an error.
        """
        if executor.migration_active:
            self.decisions.append(
                OptimizationDecision(
                    current_cost=0.0,
                    best_cost=0.0,
                    chosen=None,
                    candidates_considered=0,
                    reason="migration-in-flight",
                )
            )
            return None
        decision = self.decide(query, current, executor.statistics)
        if not decision.migrate:
            return None
        new_box = self.builder.build(decision.chosen, label=decision.chosen.signature())
        executor.start_migration(new_box, self.strategy_factory())
        return decision.chosen
