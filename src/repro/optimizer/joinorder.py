"""Cost-based join-order search over bushy trees (DPsub).

``join_orders`` (rules.py) enumerates left-deep permutations — fine for a
handful of inputs, and the shape the paper's experiments use.  This module
adds the classical dynamic program over connected subsets, considering
*bushy* shapes too: ``best_join_order`` returns the cheapest tree under the
cost model, which the re-optimizer can use instead of exhaustive
enumeration when queries join more inputs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..engine.statistics import StatisticsCatalog
from ..plans.expressions import Expression, Field, conjunction
from ..plans.logical import JoinNode, LogicalPlan, ProjectNode, Query, SelectNode
from .cost import CostModel
from .rules import JoinGraph, _rebuild


def _peel_wrappers(plan: LogicalPlan) -> Tuple[List[LogicalPlan], LogicalPlan]:
    wrappers: List[LogicalPlan] = []
    inner = plan
    while not isinstance(inner, JoinNode) and len(inner.children) == 1:
        wrappers.append(inner)
        inner = inner.children[0]
    return wrappers, inner


def best_join_order(
    plan: LogicalPlan,
    query: Query,
    statistics: Optional[StatisticsCatalog] = None,
    cost_model: Optional[CostModel] = None,
    max_leaves: int = 10,
) -> Optional[LogicalPlan]:
    """The cheapest (possibly bushy) join tree equivalent to ``plan``.

    Returns ``None`` when ``plan`` contains no join tree.  Cross products
    are only considered when a subset has no connecting predicate at all,
    the standard heuristic.  The result is re-projected to ``plan``'s
    schema, with any wrapper operators (selection, distinct, ...) that sat
    above the join tree re-applied.

    Args:
        plan: the current plan (the join tree may sit under unary wrappers).
        query: supplies the per-source windows for the cost model.
        statistics: live statistics; defaults to an empty catalog.
        cost_model: defaults to :class:`CostModel`'s defaults.
        max_leaves: guard against exponential blow-up (2^n subsets).
    """
    statistics = statistics or StatisticsCatalog()
    cost_model = cost_model or CostModel()
    wrappers, inner = _peel_wrappers(plan)
    graph = JoinGraph.extract(inner)
    if graph is None:
        return None
    leaves = graph.leaves
    if len(leaves) > max_leaves:
        raise ValueError(
            f"join-order search over {len(leaves)} inputs exceeds max_leaves="
            f"{max_leaves}"
        )
    columns_of = [frozenset(leaf.schema) for leaf in leaves]
    # A conjunct confined to one leaf never "crosses" a split and would be
    # lost; keep such residue for a final selection instead.
    residue = [
        p for p in graph.predicates
        if any(p.columns() <= cols for cols in columns_of)
    ]
    predicates = [p for p in graph.predicates if p not in residue]

    def applicable(left_cols: FrozenSet[str], right_cols: FrozenSet[str]) -> List[Expression]:
        both = left_cols | right_cols
        return [
            p for p in predicates
            if p.columns() <= both
            and not p.columns() <= left_cols
            and not p.columns() <= right_cols
        ]

    Subset = FrozenSet[int]
    best: Dict[Subset, Tuple[float, LogicalPlan, FrozenSet[str]]] = {}
    for index, leaf in enumerate(leaves):
        cost = cost_model.estimate(query, leaf, statistics).cost
        best[frozenset({index})] = (cost, leaf, columns_of[index])

    indices = range(len(leaves))
    for size in range(2, len(leaves) + 1):
        for subset_tuple in combinations(indices, size):
            subset: Subset = frozenset(subset_tuple)
            champion: Optional[Tuple[float, LogicalPlan, FrozenSet[str]]] = None
            connected_champion = False
            members = sorted(subset)
            # Enumerate proper splits; fix the smallest member on the left
            # to halve the symmetric duplicates.
            anchor = members[0]
            rest = [i for i in members if i != anchor]
            for r in range(0, len(rest)):
                for extra in combinations(rest, r):
                    left: Subset = frozenset({anchor, *extra})
                    right: Subset = subset - left
                    if not right:
                        continue
                    left_cost, left_plan, left_cols = best[left]
                    right_cost, right_plan, right_cols = best[right]
                    conds = applicable(left_cols, right_cols)
                    connected = bool(conds)
                    if connected_champion and not connected:
                        continue  # never prefer a cross product to a join
                    candidate = JoinNode(
                        left_plan, right_plan,
                        conjunction(conds) if conds else None,
                    )
                    cost = cost_model.estimate(query, candidate, statistics).cost
                    better = (
                        champion is None
                        or (connected and not connected_champion)
                        or (connected == connected_champion and cost < champion[0])
                    )
                    if better:
                        champion = (cost, candidate, left_cols | right_cols)
                        connected_champion = connected
            best[subset] = champion

    _, tree, _ = best[frozenset(indices)]
    if residue:
        tree = SelectNode(tree, conjunction(residue))
    original = sum((leaf.schema for leaf in leaves), ())
    if tree.schema != original:
        tree = ProjectNode(tree, [(Field(name), name) for name in original])
    for wrapper in reversed(wrappers):
        tree = _rebuild(wrapper, [tree])
    return tree
