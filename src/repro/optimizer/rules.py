"""Snapshot-equivalence-preserving transformation rules.

Because every standard operator is snapshot-reducible, the classical
transformation rules of the (extended) relational algebra carry over to the
stream algebra unchanged (Section 2.1) — this is the semantic foundation
that lets the optimizer produce *equivalent* plans for GenMig to migrate
between.  Implemented rules:

* selection push-down / pull-up,
* duplicate-elimination push-down through joins (the Figure 2 rule:
  ``distinct(A ⋈ B)  →  distinct(A) ⋈ distinct(B)``) and its inverse,
* join reordering over maximal equi-join subtrees (left-deep and bushy
  shapes), re-projecting to the original column order so the rewritten
  plan is equivalent *including schema*.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from .. import plans
from ..plans.expressions import Comparison, Expression, Field, conjunction, conjuncts
from ..plans.logical import (
    DistinctNode,
    JoinNode,
    LogicalPlan,
    ProjectNode,
    SelectNode,
    Source,
)


# --------------------------------------------------------------------- #
# Selection push-down
# --------------------------------------------------------------------- #


def push_down_selections(plan: LogicalPlan) -> LogicalPlan:
    """Push selection conjuncts as close to the sources as possible."""
    return _push_selects(plan, [])


def _push_selects(plan: LogicalPlan, carried: List[Expression]) -> LogicalPlan:
    if isinstance(plan, SelectNode):
        return _push_selects(plan.child, carried + list(conjuncts(plan.predicate)))
    if isinstance(plan, JoinNode):
        columns_left = set(plan.left.schema)
        columns_right = set(plan.right.schema)
        to_left: List[Expression] = []
        to_right: List[Expression] = []
        stay: List[Expression] = []
        for term in carried:
            used = term.columns()
            if used <= columns_left:
                to_left.append(term)
            elif used <= columns_right:
                to_right.append(term)
            else:
                stay.append(term)
        rewritten: LogicalPlan = JoinNode(
            _push_selects(plan.left, to_left),
            _push_selects(plan.right, to_right),
            plan.condition,
        )
        if stay:
            rewritten = SelectNode(rewritten, conjunction(stay))
        return rewritten
    rebuilt = _rebuild(plan, [_push_selects(child, []) for child in plan.children])
    if carried:
        return SelectNode(rebuilt, conjunction(carried))
    return rebuilt


def _rebuild(plan: LogicalPlan, children: Sequence[LogicalPlan]) -> LogicalPlan:
    """Clone a node with new children (sources are immutable leaves)."""
    if isinstance(plan, Source):
        return plan
    if isinstance(plan, SelectNode):
        return SelectNode(children[0], plan.predicate)
    if isinstance(plan, ProjectNode):
        return ProjectNode(children[0], plan.outputs)
    if isinstance(plan, DistinctNode):
        return DistinctNode(children[0])
    if isinstance(plan, JoinNode):
        return JoinNode(children[0], children[1], plan.condition)
    if isinstance(plan, plans.AggregateNode):
        return plans.AggregateNode(children[0], plan.aggregates, plan.group_by)
    if isinstance(plan, plans.UnionNode):
        return plans.UnionNode(children[0], children[1])
    if isinstance(plan, plans.DifferenceNode):
        return plans.DifferenceNode(children[0], children[1])
    raise TypeError(f"cannot rebuild {type(plan).__name__}")


# --------------------------------------------------------------------- #
# Duplicate-elimination push-down
# --------------------------------------------------------------------- #


def push_down_distinct(plan: LogicalPlan) -> LogicalPlan:
    """Apply ``distinct(l ⋈ r) → distinct(l) ⋈ distinct(r)`` recursively.

    Sound for joins because every output tuple is the concatenation of one
    left and one right tuple: the result is duplicate-free iff both inputs
    are [Slivinskas et al. 2000; Dayal et al. 1982].  This is the rewrite of
    the paper's Figure 2 example.
    """
    if isinstance(plan, DistinctNode) and isinstance(plan.child, JoinNode):
        join = plan.child
        return JoinNode(
            push_down_distinct(DistinctNode(join.left)),
            push_down_distinct(DistinctNode(join.right)),
            join.condition,
        )
    if isinstance(plan, DistinctNode) and isinstance(plan.child, DistinctNode):
        return push_down_distinct(plan.child)
    if isinstance(plan, DistinctNode) and isinstance(plan.child, (SelectNode, ProjectNode)):
        # Under an outer duplicate elimination, multiplicity changes below
        # are washed out, so any join underneath may deduplicate its inputs:
        # distinct(pi(l ⋈ r)) = distinct(pi(distinct(l) ⋈ distinct(r))).
        # The outer distinct stays because pi may map distinct tuples
        # together (and sigma preserves whatever pi produced).
        return DistinctNode(_dedup_join_inputs(plan.child))
    return _rebuild(plan, [push_down_distinct(child) for child in plan.children])


def _dedup_join_inputs(plan: LogicalPlan) -> LogicalPlan:
    """Deduplicate the inputs of every join under an outer distinct."""
    if isinstance(plan, JoinNode):
        return JoinNode(
            push_down_distinct(DistinctNode(plan.left)),
            push_down_distinct(DistinctNode(plan.right)),
            plan.condition,
        )
    if isinstance(plan, (SelectNode, ProjectNode)):
        return _rebuild(plan, [_dedup_join_inputs(plan.child)])
    return push_down_distinct(plan)


def pull_up_distinct(plan: LogicalPlan) -> LogicalPlan:
    """Apply ``distinct(l) ⋈ distinct(r) → distinct(l ⋈ r)`` recursively."""
    children = [pull_up_distinct(child) for child in plan.children]
    plan = _rebuild(plan, children)
    if (
        isinstance(plan, JoinNode)
        and isinstance(plan.left, DistinctNode)
        and isinstance(plan.right, DistinctNode)
    ):
        return DistinctNode(JoinNode(plan.left.child, plan.right.child, plan.condition))
    return plan


# --------------------------------------------------------------------- #
# Join reordering
# --------------------------------------------------------------------- #


class JoinGraph:
    """Leaves and equi-join predicates of a maximal join-only subtree."""

    def __init__(self, leaves: List[LogicalPlan], predicates: List[Expression]) -> None:
        self.leaves = leaves
        self.predicates = predicates

    @classmethod
    def extract(cls, plan: LogicalPlan) -> Optional["JoinGraph"]:
        """Extract the join graph if ``plan`` is a tree of joins."""
        if not isinstance(plan, JoinNode):
            return None
        leaves: List[LogicalPlan] = []
        predicates: List[Expression] = []

        def walk(node: LogicalPlan) -> None:
            if isinstance(node, JoinNode):
                walk(node.left)
                walk(node.right)
                if node.condition is not None:
                    predicates.extend(conjuncts(node.condition))
            else:
                leaves.append(node)

        walk(plan)
        return cls(leaves, predicates)

    def build(self, order: Sequence[int]) -> LogicalPlan:
        """Build a left-deep join tree over leaves in the given order.

        Predicates attach to the lowest join at which both sides' columns
        are available; a step without any applicable predicate becomes a
        cross product.  A final projection restores the original column
        order so the plan is equivalent to the source plan.
        """
        if sorted(order) != list(range(len(self.leaves))):
            raise ValueError(f"order {order} is not a permutation of the leaves")
        remaining = list(self.predicates)
        tree: LogicalPlan = self.leaves[order[0]]
        for index in order[1:]:
            right = self.leaves[index]
            available = set(tree.schema) | set(right.schema)
            applicable = [p for p in remaining if p.columns() <= available]
            remaining = [p for p in remaining if p not in applicable]
            condition = conjunction(applicable) if applicable else None
            tree = JoinNode(tree, right, condition)
        if remaining:
            tree = SelectNode(tree, conjunction(remaining))
        original = sum((leaf.schema for leaf in self.leaves), ())
        if tree.schema != original:
            tree = ProjectNode(tree, [(Field(name), name) for name in original])
        return tree

    def build_right_deep(self, order: Sequence[int]) -> LogicalPlan:
        """Build a right-deep join tree over leaves in the given order."""
        if sorted(order) != list(range(len(self.leaves))):
            raise ValueError(f"order {order} is not a permutation of the leaves")
        remaining = list(self.predicates)
        tree: LogicalPlan = self.leaves[order[-1]]
        for index in reversed(order[:-1]):
            left = self.leaves[index]
            available = set(tree.schema) | set(left.schema)
            applicable = [p for p in remaining if p.columns() <= available]
            remaining = [p for p in remaining if p not in applicable]
            condition = conjunction(applicable) if applicable else None
            tree = JoinNode(left, tree, condition)
        if remaining:
            tree = SelectNode(tree, conjunction(remaining))
        original = sum((leaf.schema for leaf in self.leaves), ())
        if tree.schema != original:
            tree = ProjectNode(tree, [(Field(name), name) for name in original])
        return tree


def join_orders(plan: LogicalPlan, limit: int = 120) -> List[LogicalPlan]:
    """Enumerate alternative left-deep join orders of a plan's join tree.

    Unary operators above the join tree (selection, projection, distinct,
    aggregation — e.g. the schema-restoring projection a previous reorder
    introduced) are peeled off, the join tree underneath is re-enumerated,
    and the wrappers are re-applied, so reordering stays available across
    successive re-optimizations.  Returns an empty list when the plan holds
    no join tree.  Enumeration is exhaustive up to ``limit`` permutations —
    fine for the handful of inputs continuous queries join in practice.
    """
    wrappers: List[LogicalPlan] = []
    inner = plan
    while not isinstance(inner, JoinNode) and len(inner.children) == 1:
        wrappers.append(inner)
        inner = inner.children[0]
    graph = JoinGraph.extract(inner)
    if graph is None:
        return []

    def rewrap(tree: LogicalPlan) -> LogicalPlan:
        for wrapper in reversed(wrappers):
            tree = _rebuild(wrapper, [tree])
        return tree

    alternatives: List[LogicalPlan] = []
    for count, order in enumerate(permutations(range(len(graph.leaves)))):
        if count >= limit:
            break
        alternatives.append(rewrap(graph.build(order)))
    return alternatives
