"""Query re-optimization: transformation rules, cost model, migration driver."""

from .cost import CostModel, Estimate
from .joinorder import best_join_order
from .optimizer import OptimizationDecision, ReOptimizer
from .rules import (
    JoinGraph,
    join_orders,
    pull_up_distinct,
    push_down_distinct,
    push_down_selections,
)

__all__ = [
    "CostModel",
    "best_join_order",
    "Estimate",
    "JoinGraph",
    "OptimizationDecision",
    "ReOptimizer",
    "join_orders",
    "pull_up_distinct",
    "push_down_distinct",
    "push_down_selections",
]
