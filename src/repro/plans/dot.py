"""Graphviz DOT export for logical plans and physical boxes.

Pure string generation — no graphviz dependency.  Render with any dot
tool, e.g. ``dot -Tsvg plan.dot -o plan.svg``.
"""

from __future__ import annotations

from typing import Dict, List

from ..engine.box import Box
from ..operators.base import Operator
from .logical import LogicalPlan


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def plan_to_dot(plan: LogicalPlan, name: str = "plan") -> str:
    """Render a logical plan tree as a DOT digraph (edges flow upward)."""
    from ..cql.unparse import _shallow_label

    lines = [
        f'digraph "{_escape(name)}" {{',
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", fontsize=11];',
    ]
    counter = {"next": 0}

    def visit(node: LogicalPlan) -> str:
        identifier = f"n{counter['next']}"
        counter["next"] += 1
        lines.append(f'  {identifier} [label="{_escape(_shallow_label(node))}"];')
        for child in node.children:
            child_id = visit(child)
            lines.append(f"  {child_id} -> {identifier};")
        return identifier

    visit(plan)
    lines.append("}")
    return "\n".join(lines)


def box_to_dot(box: Box, name: str = "") -> str:
    """Render a physical box: operators, subscriptions, taps and root."""
    lines = [
        f'digraph "{_escape(name or box.label or "box")}" {{',
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", fontsize=11];',
    ]
    identifiers: Dict[int, str] = {}
    for index, operator in enumerate(box.operators):
        identifier = f"op{index}"
        identifiers[id(operator)] = identifier
        shape = ' style="bold"' if operator is box.root else ""
        lines.append(f'  {identifier} [label="{_escape(operator.name)}"{shape}];')
    for source, ports in sorted(box.taps.items()):
        source_id = f"src_{source}"
        lines.append(
            f'  {source_id} [label="{_escape(source)}", shape=ellipse];'
        )
        for operator, port in ports:
            lines.append(
                f'  {source_id} -> {identifiers[id(operator)]} '
                f'[label="port {port}"];'
            )
    for operator in box.operators:
        for downstream, port in operator.subscribers:
            if id(downstream) in identifiers:
                lines.append(
                    f"  {identifiers[id(operator)]} -> "
                    f'{identifiers[id(downstream)]} [label="port {port}"];'
                )
    lines.append("}")
    return "\n".join(lines)
