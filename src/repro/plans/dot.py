"""Graphviz DOT export for logical plans and physical boxes.

Pure string generation — no graphviz dependency.  Render with any dot
tool, e.g. ``dot -Tsvg plan.dot -o plan.svg``.

Nodes are annotated with the plan verifier's classifications: every
non-source node carries a ``tooltip`` naming its migration traits
(snapshot-reducible / start-preserving / stateful-non-join), stateful
nodes are colored, and any subtree unsafe for the Parallel Track baseline
— a stateful non-join anywhere below — is outlined red up to the root, so
the Figure 2 shape is visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..engine.box import Box
from ..operators.base import Operator
from .logical import LogicalPlan, Source

#: Outline colors: red for PT-unsafe (stateful non-join in the subtree),
#: green for safe stateful operators (joins, the order-restoring union).
_UNSAFE_COLOR = "#c62828"
_STATEFUL_COLOR = "#2e7d32"


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def plan_to_dot(plan: LogicalPlan, name: str = "plan") -> str:
    """Render a logical plan tree as a DOT digraph (edges flow upward)."""
    from ..analysis.plan_verifier import classify_logical
    from ..cql.unparse import _shallow_label

    lines = [
        f'digraph "{_escape(name)}" {{',
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", fontsize=11];',
    ]
    counter = {"next": 0}

    def visit(node: LogicalPlan) -> Tuple[str, bool]:
        identifier = f"n{counter['next']}"
        counter["next"] += 1
        classification = classify_logical(node)
        attrs = [f'label="{_escape(_shallow_label(node))}"']
        edges: List[str] = []
        pt_unsafe = not classification.pt_compatible
        for child in node.children:
            child_id, child_unsafe = visit(child)
            pt_unsafe = pt_unsafe or child_unsafe
            edges.append(f"  {child_id} -> {identifier};")
        if not isinstance(node, Source):
            attrs.append(f'tooltip="{_escape(classification.description)}"')
            if pt_unsafe:
                attrs.append(f'color="{_UNSAFE_COLOR}"')
            elif classification.stateful:
                attrs.append(f'color="{_STATEFUL_COLOR}"')
        lines.append(f"  {identifier} [{', '.join(attrs)}];")
        lines.extend(edges)
        return identifier, pt_unsafe

    visit(plan)
    lines.append("}")
    return "\n".join(lines)


def box_to_dot(box: Box, name: str = "") -> str:
    """Render a physical box: operators, subscriptions, taps and root.

    Fused operators (:class:`~repro.plans.fusion.FusedStateless`) render
    as dashed *clusters* containing one node per fused member, chained in
    evaluation order — the collapsed pipeline stays legible in the
    picture.  Incoming edges attach to the cluster's first member and
    outgoing edges leave its last.
    """
    from ..analysis.plan_verifier import classify_operator
    from .fusion import FusedStateless

    lines = [
        f'digraph "{_escape(name or box.label or "box")}" {{',
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", fontsize=11];',
    ]
    #: Edge endpoints: where edges *into* an operator attach, and where
    #: edges *out of* it originate.  They differ only for fused clusters.
    in_ids: Dict[int, str] = {}
    out_ids: Dict[int, str] = {}
    for index, operator in enumerate(box.operators):
        identifier = f"op{index}"
        classification, _ = classify_operator(operator)
        root_style = ' style="bold"' if operator is box.root else ""
        attrs = [f'tooltip="{_escape(classification.description)}"']
        if not classification.pt_compatible:
            attrs.append(f'color="{_UNSAFE_COLOR}"')
        elif classification.stateful:
            attrs.append(f'color="{_STATEFUL_COLOR}"')
        annotations = "".join(f", {attr}" for attr in attrs)
        if isinstance(operator, FusedStateless):
            lines.append(f"  subgraph cluster_{identifier} {{")
            lines.append(
                f'    label="{_escape(operator.name)}"; style=dashed; '
                + "; ".join(attrs)
                + ";"
            )
            member_ids = []
            for position, member in enumerate(operator.members):
                member_id = f"{identifier}_m{position}"
                member_ids.append(member_id)
                style = root_style if position == len(operator.members) - 1 else ""
                lines.append(f'    {member_id} [label="{_escape(member)}"{style}];')
            for upstream, downstream in zip(member_ids, member_ids[1:]):
                lines.append(f"    {upstream} -> {downstream} [style=dashed];")
            lines.append("  }")
            in_ids[id(operator)] = member_ids[0]
            out_ids[id(operator)] = member_ids[-1]
        else:
            in_ids[id(operator)] = out_ids[id(operator)] = identifier
            lines.append(
                f'  {identifier} [label="{_escape(operator.name)}"'
                f"{root_style}{annotations}];"
            )
    for source, ports in sorted(box.taps.items()):
        source_id = f"src_{source}"
        lines.append(
            f'  {source_id} [label="{_escape(source)}", shape=ellipse];'
        )
        for operator, port in ports:
            lines.append(
                f'  {source_id} -> {in_ids[id(operator)]} '
                f'[label="port {port}"];'
            )
    for operator in box.operators:
        for downstream, port in operator.subscribers:
            if id(downstream) in in_ids:
                lines.append(
                    f"  {out_ids[id(operator)]} -> "
                    f'{in_ids[id(downstream)]} [label="port {port}"];'
                )
    lines.append("}")
    return "\n".join(lines)
