"""Logical query plans: the optimizer's and the CQL front end's currency.

A logical plan is a tree of standard (snapshot-reducible) operators over
named, windowed sources.  Window sizes live *with the sources*, outside the
tree, because the transformation rules of the relational algebra operate on
the standard operators only and every equivalent plan of a query shares the
same window placement (Section 2.2, "Query Plans"); this is also exactly
the boundary at which GenMig splices its split operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..temporal.time import Time
from .expressions import Expression, Field, Schema


class LogicalPlan:
    """Base class of logical plan nodes."""

    @property
    def schema(self) -> Schema:
        """The ordered output column names of this node."""
        raise NotImplementedError

    @property
    def children(self) -> Tuple["LogicalPlan", ...]:
        """The input plans of this node."""
        raise NotImplementedError

    def sources(self) -> Tuple[str, ...]:
        """Names of all sources below this node, left to right."""
        result: Tuple[str, ...] = ()
        for child in self.children:
            result += child.sources()
        return result

    def signature(self) -> str:
        """A stable structural signature, used for plan comparison/logging."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LogicalPlan) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return self.signature()

    def pretty(self, indent: int = 0) -> str:
        """Multi-line tree rendering for logs and docs."""
        head = "  " * indent + self._label()
        lines = [head]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return self.signature()


class Source(LogicalPlan):
    """A leaf: one named, windowed input stream."""

    def __init__(self, name: str, columns: Sequence[str], qualify: bool = True) -> None:
        self.name = name
        if qualify:
            self._schema = tuple(f"{name}.{column}" for column in columns)
        else:
            self._schema = tuple(columns)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Tuple[LogicalPlan, ...]:
        return ()

    def sources(self) -> Tuple[str, ...]:
        return (self.name,)

    def signature(self) -> str:
        return self.name

    def _label(self) -> str:
        return f"{self.name}{list(self._schema)}"


class SelectNode(LogicalPlan):
    """Selection sigma."""

    def __init__(self, child: LogicalPlan, predicate: Expression) -> None:
        missing = predicate.columns() - set(child.schema)
        if missing:
            raise ValueError(f"predicate references unknown columns {sorted(missing)}")
        self.child = child
        self.predicate = predicate

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def signature(self) -> str:
        return f"select[{self.predicate!r}]({self.child.signature()})"


class ProjectNode(LogicalPlan):
    """Projection pi: computed columns with output names."""

    def __init__(
        self, child: LogicalPlan, outputs: Sequence[Tuple[Expression, str]]
    ) -> None:
        if not outputs:
            raise ValueError("projection requires at least one output column")
        for expression, _ in outputs:
            missing = expression.columns() - set(child.schema)
            if missing:
                raise ValueError(f"projection references unknown columns {sorted(missing)}")
        self.child = child
        self.outputs = tuple(outputs)

    @property
    def schema(self) -> Schema:
        return tuple(name for _, name in self.outputs)

    @property
    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def signature(self) -> str:
        inner = ", ".join(f"{expr!r} AS {name}" for expr, name in self.outputs)
        return f"project[{inner}]({self.child.signature()})"


class JoinNode(LogicalPlan):
    """Theta join; output schema is the concatenation of the inputs'.

    ``condition=None`` denotes a cross product.  Equi-join conditions are
    detected structurally so the physical builder can choose a hash join.
    """

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        condition: Optional[Expression] = None,
    ) -> None:
        overlap = set(left.schema) & set(right.schema)
        if overlap:
            raise ValueError(f"join inputs share column names {sorted(overlap)}")
        if condition is not None:
            missing = condition.columns() - (set(left.schema) | set(right.schema))
            if missing:
                raise ValueError(f"join condition references unknown columns {sorted(missing)}")
        self.left = left
        self.right = right
        self.condition = condition

    @property
    def schema(self) -> Schema:
        return self.left.schema + self.right.schema

    @property
    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def signature(self) -> str:
        cond = repr(self.condition) if self.condition is not None else "true"
        return f"join[{cond}]({self.left.signature()}, {self.right.signature()})"

    def equi_columns(self) -> Optional[Tuple[str, str]]:
        """Return ``(left_column, right_column)`` for a simple equi-join."""
        condition = self.condition
        from .expressions import Comparison

        if not isinstance(condition, Comparison) or not condition.is_equi:
            return None
        a, b = condition.left.name, condition.right.name
        if a in self.left.schema and b in self.right.schema:
            return a, b
        if b in self.left.schema and a in self.right.schema:
            return b, a
        return None


class DistinctNode(LogicalPlan):
    """Duplicate elimination delta."""

    def __init__(self, child: LogicalPlan) -> None:
        self.child = child

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def signature(self) -> str:
        return f"distinct({self.child.signature()})"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: function name + input column (None = ``*``)."""

    function: str
    column: Optional[str] = None

    def output_name(self) -> str:
        inner = self.column if self.column is not None else "*"
        return f"{self.function}({inner})"


class AggregateNode(LogicalPlan):
    """Snapshot aggregation, optionally grouped."""

    _FUNCTIONS = ("count", "sum", "avg", "min", "max")

    def __init__(
        self,
        child: LogicalPlan,
        aggregates: Sequence[AggregateSpec],
        group_by: Sequence[str] = (),
    ) -> None:
        if not aggregates:
            raise ValueError("aggregation requires at least one aggregate")
        for spec in aggregates:
            if spec.function not in self._FUNCTIONS:
                raise ValueError(f"unknown aggregate function {spec.function!r}")
            if spec.column is not None and spec.column not in child.schema:
                raise ValueError(f"aggregate references unknown column {spec.column!r}")
            if spec.column is None and spec.function != "count":
                raise ValueError(f"{spec.function}(*) is not defined")
        unknown = set(group_by) - set(child.schema)
        if unknown:
            raise ValueError(f"GROUP BY references unknown columns {sorted(unknown)}")
        self.child = child
        self.aggregates = tuple(aggregates)
        self.group_by = tuple(group_by)

    @property
    def schema(self) -> Schema:
        return self.group_by + tuple(spec.output_name() for spec in self.aggregates)

    @property
    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.child,)

    def signature(self) -> str:
        aggs = ", ".join(spec.output_name() for spec in self.aggregates)
        group = f" by {list(self.group_by)}" if self.group_by else ""
        return f"aggregate[{aggs}{group}]({self.child.signature()})"


class UnionNode(LogicalPlan):
    """Snapshot bag union (``UNION ALL``); inputs must be union-compatible."""

    def __init__(self, left: LogicalPlan, right: LogicalPlan) -> None:
        if len(left.schema) != len(right.schema):
            raise ValueError(
                f"union inputs have different arity: {left.schema} vs {right.schema}"
            )
        self.left = left
        self.right = right

    @property
    def schema(self) -> Schema:
        return self.left.schema

    @property
    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def signature(self) -> str:
        return f"union({self.left.signature()}, {self.right.signature()})"


class DifferenceNode(LogicalPlan):
    """Snapshot bag difference; inputs must be union-compatible."""

    def __init__(self, left: LogicalPlan, right: LogicalPlan) -> None:
        if len(left.schema) != len(right.schema):
            raise ValueError(
                f"difference inputs have different arity: {left.schema} vs {right.schema}"
            )
        self.left = left
        self.right = right

    @property
    def schema(self) -> Schema:
        return self.left.schema

    @property
    def children(self) -> Tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def signature(self) -> str:
        return f"difference({self.left.signature()}, {self.right.signature()})"


@dataclass
class Query:
    """A complete continuous query: a logical plan plus window metadata."""

    plan: LogicalPlan
    windows: Dict[str, Time] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = set(self.plan.sources()) - set(self.windows)
        if missing:
            raise ValueError(f"no window declared for sources {sorted(missing)}")

    @property
    def global_window(self) -> Time:
        return max(self.windows.values())
