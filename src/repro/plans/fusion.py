"""Operator fusion: collapse stateless chains into compiled-kernel operators.

A chain of stateless operators — selections, projections, scalar maps —
costs one full Python ``process`` → ``_on_element`` → ``_stage`` →
``_emit`` round-trip per element *per operator*.  Fusion rewrites a built
:class:`~repro.engine.box.Box` so that every maximal chain of fusable
operators becomes a single :class:`FusedStateless` operator driving one
compiled kernel (:mod:`repro.plans.kernels`): a whole run of a ``Batch``
is filtered and projected by generated list comprehensions, with no
per-element operator dispatch in between.

The rewrite is semantics-preserving in the strongest sense this engine
tests: fused and unfused boxes are *byte-identical* — same output
elements, same delivery order, same aggregate meter charges per category
(the kernel reports per-stage input counts so each stage charges exactly
``n * cost`` as the unfused loop would).  That makes a fused plan just
another snapshot-equivalent box in the paper's sense, so it composes with
migration: GenMig can move a running query from an unfused old box onto a
fused new box without either side knowing.

Fusion boundaries:

* stateful operators (joins, aggregation, duplicate elimination,
  difference, the order-restoring union) are never fused — a chain
  *feeding* a Union port fuses up to the port and re-subscribes there,
  which is all the pass-through routing a union's inputs need;
* operators without a :data:`FUSION_SPEC_ATTR` annotation (hand-built
  closures the kernel compiler cannot see into) are left untouched;
* a chain interior never crosses an operator that is externally observed
  (the box root, a tapped port, a multi-subscriber fan-out).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.box import Box, InputPort
from ..operators.base import Operator, StatelessOperator
from ..operators import base as _operator_base
from ..temporal.batch import Batch
from ..temporal.columnar import ColumnarBatch
from ..temporal.element import StreamElement
from .kernels import CompiledKernel, FusedStep, compile_kernel

#: Attribute the physical builder attaches to fusable operators: the
#: operator's behaviour as a :class:`FusedStep` over expression trees.
FUSION_SPEC_ATTR = "fusion_spec"


class FusedStateless(StatelessOperator):
    """A maximal stateless chain evaluated by one compiled kernel.

    Args:
        steps: the member stages, upstream first.
        members: diagnostic names of the operators the chain replaces
            (rendered as a cluster by ``box_to_dot``).
        member_profiles: the members' migration-profile kinds; the plan
            verifier derives this operator's classification from them
            (all-stateless members make a stateless fused operator).
    """

    def __init__(
        self,
        steps: Sequence[FusedStep],
        members: Sequence[str] = (),
        member_profiles: Optional[Sequence[str]] = None,
        name: str = "",
    ) -> None:
        chain = tuple(steps)
        kernel = compile_kernel(chain)
        super().__init__(name=name or f"fused[{'+'.join(s.kind for s in chain)}]")
        self.steps = chain
        self.kernel: CompiledKernel = kernel
        self.members = tuple(members) or tuple(
            f"{s.kind}#{i}" for i, s in enumerate(chain)
        )
        self.member_profiles = (
            tuple(member_profiles)
            if member_profiles is not None
            else ("stateless",) * len(chain)
        )

    def _charge(self, counts: Tuple[int, ...]) -> None:
        # Zero-input stages are skipped entirely: the unfused operator
        # would not have charged either, and `by_category` must stay
        # key-for-key identical with the unfused run.
        meter = self.meter
        for step, n in zip(self.steps, counts):
            if n:
                meter.charge(n * step.cost, step.category)

    def _on_element(self, element: StreamElement, port: int) -> None:
        out, counts = self.kernel.fn((element,))
        self._charge(counts)
        for result in out:
            self._stage(result)

    def process_batch(self, batch: Batch, port: int = 0) -> None:
        """Evaluate the whole chain over the run in one kernel call."""
        if _operator_base.SANITIZER is not None:
            _operator_base.SANITIZER.on_batch(self, batch, 0)
        watermarks = self._watermarks
        elements = batch.elements
        if elements[0].start < watermarks[0]:
            raise ValueError(
                f"{self.name}: out-of-order element on port 0: "
                f"{elements[0].start} < watermark {watermarks[0]}"
            )
        watermarks[0] = elements[-1].start
        out, counts = self.kernel.fn(elements)
        self._charge(counts)
        if out:
            if type(batch) is ColumnarBatch:
                # Fused kernels work element-wise, but a columnar run must
                # leave the chain columnar so downstream stateful kernels
                # still see struct-of-arrays input.
                self._emit_batch(
                    ColumnarBatch.from_elements(
                        out, batch.watermark, batch.source, batch.uniform_start
                    )
                )
            else:
                self._emit_batch(batch.with_elements(out))
        self._advance()
        if batch.watermark > watermarks[0]:
            self.process_heartbeat(batch.watermark, 0)

    def __repr__(self) -> str:
        return f"<FusedStateless {self.name!r} members={list(self.members)}>"


# --------------------------------------------------------------------- #
# The fusion pass
# --------------------------------------------------------------------- #


def fusable(op: Operator) -> bool:
    """Whether ``op`` may become a member of a fused chain."""
    return (
        isinstance(op, StatelessOperator)
        and op.arity == 1
        and isinstance(getattr(op, FUSION_SPEC_ATTR, None), FusedStep)
    )


def _chains(box: Box) -> List[List[Operator]]:
    """Maximal fusable chains in subscription order, upstream first.

    A link ``A → B`` joins a chain when the edge is exclusive on both
    sides: ``A`` has exactly one subscriber and no sinks (nothing else
    observes its output, and it is not the box root), and ``B``'s single
    input port is fed only by ``A`` (no tap, no second upstream).
    """
    members = [op for op in box.operators if fusable(op)]
    member_ids = {id(op) for op in members}

    # How many distinct feeds each (operator, port) receives, and from whom.
    feed_count: Dict[Tuple[int, int], int] = {}
    fed_by: Dict[int, Optional[int]] = {}
    for ports in box.taps.values():
        for op, port in ports:
            feed_count[(id(op), port)] = feed_count.get((id(op), port), 0) + 1
            fed_by[id(op)] = None  # a tap is not a fusable upstream
    for op in box.operators:
        for downstream, port in op.subscribers:
            key = (id(downstream), port)
            feed_count[key] = feed_count.get(key, 0) + 1
            fed_by.setdefault(id(downstream), id(op))

    def links_to(a: Operator) -> Optional[Operator]:
        if a is box.root or a._sinks:
            return None
        subs = a.subscribers
        if len(subs) != 1:
            return None
        b, port = subs[0]
        if id(b) not in member_ids or port != 0:
            return None
        if feed_count.get((id(b), 0), 0) != 1 or fed_by.get(id(b)) != id(a):
            return None
        return b

    successor: Dict[int, Operator] = {}
    has_predecessor: set = set()
    for op in members:
        nxt = links_to(op)
        if nxt is not None:
            successor[id(op)] = nxt
            has_predecessor.add(id(nxt))

    chains: List[List[Operator]] = []
    for op in members:
        if id(op) in has_predecessor:
            continue
        chain = [op]
        while id(chain[-1]) in successor:
            chain.append(successor[id(chain[-1])])
        chains.append(chain)
    return chains


def fuse_box(box: Box, min_length: int = 2) -> Box:
    """Fuse every maximal stateless chain of ``box``, in place.

    Chains shorter than ``min_length`` stay as-is (fusing a single
    operator would only add kernel-compile latency for no dispatch win).
    Returns the same box for chaining.
    """
    for chain in _chains(box):
        if len(chain) < min_length:
            continue
        head, tail = chain[0], chain[-1]
        fused = FusedStateless(
            steps=[getattr(op, FUSION_SPEC_ATTR) for op in chain],
            members=[op.name for op in chain],
        )

        # Incoming edges: taps and upstream subscriptions pointing at the
        # chain head now point at the fused operator (in place, so the
        # relative dispatch order of sibling subscribers is preserved).
        for ports in box.taps.values():
            for index, (op, port) in enumerate(ports):
                if op is head:
                    ports[index] = (fused, port)
        chain_ids = {id(op) for op in chain}
        for op in box.operators:
            if id(op) in chain_ids:
                continue
            subscriptions = op._subscribers
            for index, (downstream, port) in enumerate(subscriptions):
                if downstream is head:
                    subscriptions[index] = (fused, 0)

        # Outgoing edges: the fused operator inherits the tail's
        # subscribers and sinks; the members are fully disconnected.
        for downstream, port in tail.subscribers:
            fused.subscribe(downstream, port)
        for sink in list(tail._sinks):
            fused.attach_sink(sink)
        for op in chain:
            op.clear_subscribers()

        position = box.operators.index(head)
        box.operators = [op for op in box.operators if id(op) not in chain_ids]
        box.operators.insert(position, fused)
        if tail is box.root:
            box.root = fused
    return box


def fused_operators(box: Box) -> List[FusedStateless]:
    """The fused operators of a box (diagnostics and tests)."""
    return [op for op in box.operators if isinstance(op, FusedStateless)]
