"""A small expression language over named payload columns.

Logical plans carry predicates and projections as introspectable expression
trees rather than opaque callables, so the optimizer can reason about them
(which columns a predicate touches decides where it may be pushed) and the
physical builder can compile them against the schema at hand.
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable, FrozenSet, Sequence, Tuple

from ..temporal.element import Payload

#: A schema is an ordered tuple of column names.
Schema = Tuple[str, ...]

_COMPARISONS = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

_ARITHMETIC = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
    "%": _operator.mod,
}


class Expression:
    """Base class of all expressions.

    Equality and hashing are *structural*: each subclass exposes its
    defining fields through :meth:`_key`, and two expressions are equal
    exactly when they are the same type over equal fields.  The tuples
    nest (sub-expressions appear in their parent's key), so whole trees
    hash in one pass — fast and stable across processes, which the kernel
    compile cache (:mod:`repro.plans.kernels`) relies on for its
    ``(expression tree, schema)`` keys.
    """

    def columns(self) -> FrozenSet[str]:
        """The column names this expression references."""
        raise NotImplementedError

    def compile(self, schema: Schema) -> Callable[[Payload], Any]:
        """Compile into a payload function for the given schema."""
        raise NotImplementedError

    def _key(self) -> Tuple[Any, ...]:
        """The structural identity of this node (sub-expressions included)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._key())


class Field(Expression):
    """Reference to a named column."""

    def __init__(self, name: str) -> None:
        self.name = name

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def compile(self, schema: Schema) -> Callable[[Payload], Any]:
        try:
            index = schema.index(self.name)
        except ValueError:
            raise KeyError(f"column {self.name!r} not in schema {schema}") from None
        return lambda row: row[index]

    def _key(self) -> Tuple[Any, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return self.name


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def compile(self, schema: Schema) -> Callable[[Payload], Any]:
        value = self.value
        return lambda row: value

    def _key(self) -> Tuple[Any, ...]:
        # Unhashable constants (lists, dicts) degrade to their repr so the
        # tree stays hashable; scalar literals — the normal case — compare
        # by value.
        try:
            hash(self.value)
        except TypeError:
            return (repr(self.value),)
        return (self.value,)

    def __repr__(self) -> str:
        return repr(self.value)


class Comparison(Expression):
    """A binary comparison ``left op right``."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARISONS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def compile(self, schema: Schema) -> Callable[[Payload], bool]:
        fn = _COMPARISONS[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: fn(left(row), right(row))

    def _key(self) -> Tuple[Any, ...]:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    @property
    def is_equi(self) -> bool:
        """Whether this is an equality between two plain columns."""
        return self.op == "=" and isinstance(self.left, Field) and isinstance(self.right, Field)


class Arithmetic(Expression):
    """A binary arithmetic expression ``left op right``."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITHMETIC:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def compile(self, schema: Schema) -> Callable[[Payload], Any]:
        fn = _ARITHMETIC[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: fn(left(row), right(row))

    def _key(self) -> Tuple[Any, ...]:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    """Conjunction of one or more predicates."""

    def __init__(self, *terms: Expression) -> None:
        if not terms:
            raise ValueError("And requires at least one term")
        self.terms = tuple(terms)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for term in self.terms:
            result |= term.columns()
        return result

    def compile(self, schema: Schema) -> Callable[[Payload], bool]:
        compiled = [term.compile(schema) for term in self.terms]
        return lambda row: all(fn(row) for fn in compiled)

    def _key(self) -> Tuple[Any, ...]:
        return self.terms

    def __repr__(self) -> str:
        return " AND ".join(repr(term) for term in self.terms)


class Or(Expression):
    """Disjunction of one or more predicates."""

    def __init__(self, *terms: Expression) -> None:
        if not terms:
            raise ValueError("Or requires at least one term")
        self.terms = tuple(terms)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for term in self.terms:
            result |= term.columns()
        return result

    def compile(self, schema: Schema) -> Callable[[Payload], bool]:
        compiled = [term.compile(schema) for term in self.terms]
        return lambda row: any(fn(row) for fn in compiled)

    def _key(self) -> Tuple[Any, ...]:
        return self.terms

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(term) for term in self.terms) + ")"


class Not(Expression):
    """Negation of a predicate."""

    def __init__(self, term: Expression) -> None:
        self.term = term

    def columns(self) -> FrozenSet[str]:
        return self.term.columns()

    def compile(self, schema: Schema) -> Callable[[Payload], bool]:
        inner = self.term.compile(schema)
        return lambda row: not inner(row)

    def _key(self) -> Tuple[Any, ...]:
        return (self.term,)

    def __repr__(self) -> str:
        return f"NOT {self.term!r}"


def conjuncts(predicate: Expression) -> Tuple[Expression, ...]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if isinstance(predicate, And):
        result: Tuple[Expression, ...] = ()
        for term in predicate.terms:
            result += conjuncts(term)
        return result
    return (predicate,)


def conjunction(terms: Sequence[Expression]) -> Expression:
    """Combine conjuncts back into a single predicate."""
    if not terms:
        raise ValueError("cannot build a conjunction of zero terms")
    if len(terms) == 1:
        return terms[0]
    return And(*terms)
