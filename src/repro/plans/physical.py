"""Logical-to-physical plan compilation: build an executable Box.

The builder walks the logical tree bottom-up, instantiates one physical
operator per standard logical operator, wires subscriptions, and collects
the input taps.  Join implementations are chosen structurally: simple
equi-join conditions compile to symmetric hash joins, everything else to
symmetric nested-loops joins (the paper's experimental setup uses the
latter; ``join_cost`` models its expensive-predicate variant).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..engine.box import Box, InputPort
from ..operators.aggregate import Aggregate
from ..operators.base import Operator
from ..operators.difference import Difference
from ..operators.duplicate import DuplicateElimination
from ..operators.filter import Select
from ..operators.join import HashJoin, NestedLoopsJoin
from ..operators.project import Project
from ..operators.scalar import avg_of, count, max_of, min_of, sum_of
from ..operators.union import Union
from ..temporal.element import Payload
from .expressions import Schema
from .fusion import FUSION_SPEC_ATTR, fuse_box
from .kernels import project_step, select_step
from .logical import (
    AggregateNode,
    AggregateSpec,
    DifferenceNode,
    DistinctNode,
    JoinNode,
    LogicalPlan,
    ProjectNode,
    SelectNode,
    Source,
    UnionNode,
)


class PhysicalBuilder:
    """Compiles logical plans into boxes.

    Args:
        join_cost: cost units charged per join predicate evaluation,
            modelling cheap (1) or expensive predicates (Figure 6).
        select_cost: cost units per selection predicate evaluation.
        fuse: apply the operator-fusion rewrite (:mod:`repro.plans.fusion`)
            to every built box.  On by default — fused and unfused boxes
            are byte-identical — and ``fuse=False`` keeps the unfused
            chain reachable as the equivalence oracle.
        columnar: enable struct-of-arrays state and compiled stateful
            kernels on the operators that support them (hash-join probe
            and build, the ungrouped-aggregate segment fold).  On by
            default — columnar and element-wise boxes are byte-identical —
            and ``columnar=False`` keeps the element-wise path reachable
            as the equivalence oracle.
    """

    def __init__(
        self,
        join_cost: int = 1,
        select_cost: int = 1,
        force_nested_loops: bool = False,
        fuse: bool = True,
        columnar: bool = True,
    ) -> None:
        self.join_cost = join_cost
        self.select_cost = select_cost
        #: Compile equi-joins to nested-loops joins too — the paper's
        #: experimental setup (4-way nested-loops join trees, Section 5).
        self.force_nested_loops = force_nested_loops
        self.fuse = fuse
        self.columnar = columnar

    def config(self) -> Dict[str, object]:
        """The constructor arguments as a picklable dict.

        Shard workers rebuild an identical builder from this on the other
        side of a process boundary (``repro.engine.sharded``).
        """
        return {
            "join_cost": self.join_cost,
            "select_cost": self.select_cost,
            "force_nested_loops": self.force_nested_loops,
            "fuse": self.fuse,
            "columnar": self.columnar,
        }

    def build(self, plan: LogicalPlan, label: str = "") -> Box:
        """Compile ``plan`` into an executable :class:`Box`."""
        taps: Dict[str, List[InputPort]] = {}
        operators: List[Operator] = []
        root, pending = self._compile(plan, taps, operators)
        if root is None:
            # The plan is a bare source: materialise an identity operator so
            # the box has a root to attach sinks to.
            identity = Project(lambda row: row, name="identity")
            operators.append(identity)
            for source, port in pending:
                taps.setdefault(source, []).append((identity, port))
            root = identity
        box = Box(taps=taps, root=root, operators=operators, label=label or plan.signature())
        if self.fuse:
            fuse_box(box)
        return box

    # ------------------------------------------------------------------ #
    # Recursive compilation
    # ------------------------------------------------------------------ #

    def _compile(
        self,
        node: LogicalPlan,
        taps: Dict[str, List[InputPort]],
        operators: List[Operator],
    ) -> Tuple[Optional[Operator], List[Tuple[str, int]]]:
        """Compile one node.

        Returns ``(operator, pending_source_ports)``: when the node is a
        bare source, ``operator`` is ``None`` and the *parent* registers the
        tap; otherwise ``operator`` is the node's physical root.
        """
        if isinstance(node, Source):
            return None, [(node.name, 0)]

        if isinstance(node, SelectNode):
            predicate = node.predicate.compile(node.child.schema)
            op = Select(predicate, cost=self.select_cost, name=f"select[{node.predicate!r}]")
            # The operator's behaviour as expression trees: what the fusion
            # pass needs to kernel-compile it (hand-built closures stay
            # unfusable — the compiler cannot see into them).
            setattr(
                op,
                FUSION_SPEC_ATTR,
                select_step(node.predicate, node.child.schema, cost=self.select_cost),
            )
        elif isinstance(node, ProjectNode):
            op = Project(
                self._projection(node), name=f"project[{','.join(node.schema)}]"
            )
            setattr(op, FUSION_SPEC_ATTR, project_step(node.outputs, node.child.schema))
        elif isinstance(node, DistinctNode):
            op = DuplicateElimination(name="distinct")
        elif isinstance(node, JoinNode):
            op = self._join(node)
        elif isinstance(node, AggregateNode):
            op = self._aggregate(node)
        elif isinstance(node, UnionNode):
            op = Union(name="union")
        elif isinstance(node, DifferenceNode):
            op = Difference(name="difference")
        else:
            raise TypeError(f"cannot compile logical node {type(node).__name__}")

        operators.append(op)
        for port, child in enumerate(node.children):
            child_op, pending = self._compile(child, taps, operators)
            if child_op is None:
                for source, _ in pending:
                    taps.setdefault(source, []).append((op, port))
            else:
                child_op.subscribe(op, port)
        return op, []

    def _projection(self, node: ProjectNode) -> Callable[[Payload], Payload]:
        compiled = [expr.compile(node.child.schema) for expr, _ in node.outputs]
        return lambda row: tuple(fn(row) for fn in compiled)

    def _join(self, node: JoinNode) -> Operator:
        equi = node.equi_columns()
        if equi is not None and not self.force_nested_loops:
            left_column, right_column = equi
            left_index = node.left.schema.index(left_column)
            right_index = node.right.schema.index(right_column)
            join: Operator = HashJoin(
                left_key=lambda row, i=left_index: row[i],
                right_key=lambda row, i=right_index: row[i],
                predicate_cost=self.join_cost,
                name=f"hash-join[{left_column}={right_column}]",
            )
            if self.columnar:
                # The positional indices mirror the key closures above, so
                # the compiled probe kernels and the element path agree.
                join.enable_columnar(left_index, right_index)
        elif node.condition is None:
            join = NestedLoopsJoin(
                lambda left, right: True,
                predicate_cost=self.join_cost,
                name="cross-join",
            )
        else:
            schema: Schema = node.schema
            predicate = node.condition.compile(schema)
            join = NestedLoopsJoin(
                lambda left, right: predicate(left + right),
                predicate_cost=self.join_cost,
                name=f"nl-join[{node.condition!r}]",
            )
        if node.condition is not None:
            # The key the cost model uses to look up observed selectivities;
            # the executor points the join's probe at the same catalog entry.
            join.statistics_key = repr(node.condition)
        return join

    def _aggregate(self, node: AggregateNode) -> Aggregate:
        schema = node.child.schema
        functions = []
        for spec in node.aggregates:
            index = schema.index(spec.column) if spec.column is not None else 0
            if spec.function == "count":
                functions.append(count())
            elif spec.function == "sum":
                functions.append(sum_of(index))
            elif spec.function == "avg":
                functions.append(avg_of(index))
            elif spec.function == "min":
                functions.append(min_of(index))
            elif spec.function == "max":
                functions.append(max_of(index))
        group_key = None
        if node.group_by:
            indices = tuple(schema.index(column) for column in node.group_by)
            group_key = lambda row: tuple(row[i] for i in indices)
        name = f"aggregate[{','.join(s.output_name() for s in node.aggregates)}]"
        aggregate = Aggregate(functions, group_key=group_key, name=name)
        if (
            self.columnar
            and group_key is None
            and len(functions) == len(node.aggregates)
        ):
            spec = tuple(
                (
                    spec.function,
                    schema.index(spec.column) if spec.column is not None else None,
                )
                for spec in node.aggregates
            )
            aggregate.enable_columnar(spec)
        return aggregate
