"""Expression code generation: compiled per-run kernels for fused chains.

A *kernel* is one generated Python function evaluating a whole chain of
stateless stages (selections and projections) over an ordered run of
stream elements.  Each stage becomes a single list comprehension with the
stage's expression tree inlined as native Python source — no per-element
operator dispatch, no closure tree per expression node — which is where
the fused hot path gets its speed:

* a ``Comparison("<", Field("a.v"), Literal(5))`` compiles to the literal
  source ``e.payload[1] < 5`` instead of three nested lambdas;
* a selection stage is ``[e for e in s0 if <predicate>]``;
* a projection stage is ``[e.with_payload((<expr>, ...)) for e in s0]``.

Stage *input counts* fall out as ``len()`` of the intermediate lists, so
the kernel can report exactly the per-element meter charges the unfused
operator chain would have made — one aggregated ``charge(n * cost)`` per
stage per run, same totals, same categories.

Kernels are cached process-wide, keyed on the structural identity of the
``(expression trees, schemas)`` pair (see :meth:`Expression._key`); the
hit/miss counters are surfaced through
:meth:`repro.engine.metrics.MetricsRecorder.to_dict` and the hot-path
benchmark.  Kernel inputs must be side-effect-free expression trees —
bare callables cannot be inlined, verified, or cached, and lint rule
``RLB004`` rejects them statically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..temporal.element import StreamElement
from .expressions import (
    And,
    Arithmetic,
    Comparison,
    Expression,
    Field,
    Literal,
    Not,
    Or,
    Schema,
)

#: Kinds of fusable stages.
SELECT = "select"
PROJECT = "project"

#: Comparison spellings translated to Python operators.
_PY_COMPARISONS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Literal types whose ``repr`` round-trips and may be embedded verbatim.
_EMBEDDABLE = (int, float, bool, str, bytes, type(None))


@dataclass(frozen=True)
class FusedStep:
    """One stateless stage of a fused chain, described by expressions.

    Attributes:
        kind: :data:`SELECT` (filter by ``exprs[0]``) or :data:`PROJECT`
            (rebuild the payload from ``exprs``).
        exprs: the stage's expression trees over ``input_schema``.
        input_schema: the column names of the stage's input payloads.
        output_schema: the columns the stage produces; selections pass
            their input schema through.
        cost: meter units per input element (``Select.cost`` semantics).
        category: meter category charged, e.g. ``"select"``/``"project"``.
    """

    kind: str
    exprs: Tuple[Expression, ...]
    input_schema: Schema
    output_schema: Schema
    cost: int = 1
    category: str = "misc"

    def __post_init__(self) -> None:
        if self.kind not in (SELECT, PROJECT):
            raise ValueError(f"unknown fused step kind {self.kind!r}")
        if self.kind == SELECT and len(self.exprs) != 1:
            raise ValueError("a select step takes exactly one predicate")
        if self.kind == SELECT and self.output_schema != self.input_schema:
            raise ValueError("a select step cannot change the schema")
        if self.kind == PROJECT and len(self.exprs) != len(self.output_schema):
            raise ValueError("a project step needs one expression per output column")
        for expr in self.exprs:
            if not isinstance(expr, Expression):
                raise TypeError(
                    f"kernel inputs must be Expression trees, got "
                    f"{type(expr).__name__}: bare callables cannot be "
                    "inlined or verified side-effect-free (RLB004)"
                )


def select_step(
    predicate: Expression, schema: Schema, cost: int = 1
) -> FusedStep:
    """A selection stage: keep payloads satisfying ``predicate``."""
    return FusedStep(
        kind=SELECT,
        exprs=(predicate,),
        input_schema=tuple(schema),
        output_schema=tuple(schema),
        cost=cost,
        category="select",
    )


def project_step(
    outputs: Sequence[Tuple[Expression, str]], schema: Schema, cost: int = 1
) -> FusedStep:
    """A projection stage: rebuild the payload from named expressions."""
    return FusedStep(
        kind=PROJECT,
        exprs=tuple(expr for expr, _ in outputs),
        input_schema=tuple(schema),
        output_schema=tuple(name for _, name in outputs),
        cost=cost,
        category="project",
    )


# --------------------------------------------------------------------- #
# Expression → Python source
# --------------------------------------------------------------------- #


def expression_source(
    expr: Expression, schema: Schema, row: str, hoisted: Dict[str, Any]
) -> str:
    """Render ``expr`` as Python source reading columns from ``row``.

    Non-embeddable constants and unknown expression types are *hoisted*:
    they become entries of ``hoisted`` (the generated function's globals)
    referenced by name, so every expression the interpreter can evaluate
    can also be kernel-compiled — unknown types just keep their compiled-
    closure cost.  Type checks are deliberately *exact* (not isinstance):
    a subclass of a known node may override ``compile`` with different
    semantics, and inlining the base behaviour would silently diverge
    from the interpreter; subclasses take the hoisted-closure path.
    """
    node_type = type(expr)
    if node_type is Field:
        try:
            index = schema.index(expr.name)
        except ValueError:
            raise KeyError(f"column {expr.name!r} not in schema {schema}") from None
        return f"{row}[{index}]"
    if node_type is Literal:
        value = expr.value
        if type(value) in _EMBEDDABLE:
            return repr(value)
        name = f"_k{len(hoisted)}"
        hoisted[name] = value
        return name
    if node_type is Comparison:
        left = expression_source(expr.left, schema, row, hoisted)
        right = expression_source(expr.right, schema, row, hoisted)
        return f"({left} {_PY_COMPARISONS[expr.op]} {right})"
    if node_type is Arithmetic:
        left = expression_source(expr.left, schema, row, hoisted)
        right = expression_source(expr.right, schema, row, hoisted)
        return f"({left} {expr.op} {right})"
    if node_type is And:
        terms = [expression_source(t, schema, row, hoisted) for t in expr.terms]
        return "(" + " and ".join(terms) + ")"
    if node_type is Or:
        terms = [expression_source(t, schema, row, hoisted) for t in expr.terms]
        return "(" + " or ".join(terms) + ")"
    if node_type is Not:
        return f"(not {expression_source(expr.term, schema, row, hoisted)})"
    # Unknown Expression subclass: hoist its compiled form.  Still an
    # Expression — the side-effect-free contract holds — it just keeps the
    # closure-call cost the built-in node types shed.
    name = f"_k{len(hoisted)}"
    hoisted[name] = expr.compile(schema)
    return f"{name}({row})"


# --------------------------------------------------------------------- #
# Kernel compilation
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CompiledKernel:
    """A generated per-run kernel plus the metadata to account for it.

    ``fn(elements)`` evaluates the whole chain over one ordered run and
    returns ``(survivors, counts)`` where ``counts[i]`` is the number of
    elements that *entered* stage ``i`` — exactly the number of meter
    charges the unfused operator chain would have made there.
    """

    fn: Callable[[Sequence[StreamElement]], Tuple[List[StreamElement], Tuple[int, ...]]]
    source: str
    steps: Tuple[FusedStep, ...]
    input_schema: Schema
    output_schema: Schema


def generate_source(steps: Sequence[FusedStep], hoisted: Dict[str, Any]) -> str:
    """Generate the kernel function source for a validated chain."""
    lines = ["def _kernel(s0):"]
    current = "s0"
    counts: List[str] = []
    for index, step in enumerate(steps):
        counts.append(f"len({current})")
        out = f"s{index + 1}"
        if step.kind == SELECT:
            predicate = expression_source(
                step.exprs[0], step.input_schema, "e.payload", hoisted
            )
            lines.append(f"    {out} = [e for e in {current} if {predicate}]")
        else:
            rendered = [
                expression_source(expr, step.input_schema, "e.payload", hoisted)
                for expr in step.exprs
            ]
            payload = "(" + ", ".join(rendered) + ("," if len(rendered) == 1 else "") + ")"
            lines.append(
                f"    {out} = [e.with_payload({payload}) for e in {current}]"
            )
        current = out
    lines.append(f"    return {current}, ({', '.join(counts)},)")
    return "\n".join(lines) + "\n"


def _validate_chain(steps: Sequence[FusedStep]) -> None:
    if not steps:
        raise ValueError("cannot compile an empty fused chain")
    for previous, step in zip(steps, steps[1:]):
        if step.input_schema != previous.output_schema:
            raise ValueError(
                f"fused chain schema mismatch: stage consumes "
                f"{step.input_schema} but upstream produces "
                f"{previous.output_schema}"
            )


#: The process-wide compile cache.  Fused stateless chains key on their
#: structural identity — a tuple of :class:`FusedStep`\ s, each hashing
#: over its expression trees (structural ``Expression._key`` tuples) and
#: schemas.  Stateful kernels key on tagged tuples such as
#: ``("hash-probe", port, key_index)`` — a leading string tag no
#: ``FusedStep`` tuple can collide with.
_CACHE: Dict[Any, Any] = {}
_HITS = 0
_MISSES = 0

#: Lifetime counters: like the pair above but *never* reset by
#: :func:`clear_kernel_cache`, so per-query deltas (see
#: :meth:`repro.engine.metrics.MetricsRecorder.to_dict`) survive a
#: mid-run cache clear instead of going negative or skewing hit rates.
_LIFETIME_HITS = 0
_LIFETIME_MISSES = 0
_LIFETIME_COMPILED = 0


def _compile_cached(key: Any, build: Callable[[], Any]) -> Any:
    """Fetch ``key`` from the process-wide cache, building on a miss."""
    global _HITS, _MISSES, _LIFETIME_HITS, _LIFETIME_MISSES, _LIFETIME_COMPILED
    cached = _CACHE.get(key)
    if cached is not None:
        _HITS += 1
        _LIFETIME_HITS += 1
        return cached
    _MISSES += 1
    _LIFETIME_MISSES += 1
    kernel = build()
    _CACHE[key] = kernel
    _LIFETIME_COMPILED += 1
    return kernel


def _exec_kernel(source: str, namespace: Dict[str, Any]) -> Callable[..., Any]:
    """Compile ``source`` and return its ``_kernel`` function."""
    code = compile(source, f"<kernel:{len(_CACHE)}>", "exec")
    exec(code, namespace)
    return namespace["_kernel"]


def compile_kernel(steps: Sequence[FusedStep]) -> CompiledKernel:
    """Compile (or fetch from cache) the kernel for a fused chain."""
    key = tuple(steps)

    def build() -> CompiledKernel:
        _validate_chain(key)
        hoisted: Dict[str, Any] = {}
        source = generate_source(key, hoisted)
        namespace: Dict[str, Any] = {"__builtins__": {"len": len}}
        namespace.update(hoisted)
        return CompiledKernel(
            fn=_exec_kernel(source, namespace),
            source=source,
            steps=key,
            input_schema=key[0].input_schema,
            output_schema=key[-1].output_schema,
        )

    return _compile_cached(key, build)


def kernel_cache_stats() -> Dict[str, int]:
    """Process-wide compile-cache counters.

    ``hits``/``misses``/``compiled`` reflect the current cache epoch
    (reset by :func:`clear_kernel_cache`); the ``lifetime_*`` trio is
    monotone over the whole process, the basis for per-query deltas.
    """
    return {
        "hits": _HITS,
        "misses": _MISSES,
        "compiled": len(_CACHE),
        "lifetime_hits": _LIFETIME_HITS,
        "lifetime_misses": _LIFETIME_MISSES,
        "lifetime_compiled": _LIFETIME_COMPILED,
    }


def clear_kernel_cache() -> None:
    """Drop all cached kernels and zero the epoch counters.

    Test isolation and bench cold-start measurement; the lifetime
    counters keep running so metric deltas stay meaningful.
    """
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


# --------------------------------------------------------------------- #
# Stateful kernels: hash-join probe, aggregate fold, window assignment
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StatefulKernel:
    """A generated kernel over columnar state, plus its cache identity.

    Unlike :class:`CompiledKernel` these functions read parallel
    start/end/row columns (of a
    :class:`~repro.temporal.columnar.ColumnarBatch` and of columnar
    operator state) rather than boxed elements; ``key`` is the tagged
    cache-key tuple that produced the kernel.
    """

    fn: Callable[..., Any]
    source: str
    key: Tuple[Any, ...]


def compile_probe_kernel(port: int, key_index: int) -> StatefulKernel:
    """The hash-join probe loop for one input port, as generated code.

    ``fn(lo, hi, starts, ends, rows, buckets, p_starts, p_ends, p_rows,
    out_s, out_e, out_r)`` probes the *partner* side's columnar state
    (``buckets`` maps key → partner row indices in insertion order) for
    the run slice ``[lo, hi)``, appends every intersecting result to the
    ``out_*`` columns, and returns ``(matches, ahead)``:

    * ``matches`` counts every bucket candidate *before* the interval
      intersection — exactly the element path's predicate-charge count;
    * ``ahead`` is True when some result starts after the run's own
      start (possible only when the partner watermark runs ahead), in
      which case the caller must stage instead of fast-emitting.

    Payload concatenation order follows the port: a port-0 probe emits
    ``row + partner_row``, a port-1 probe the reverse.  The kernel is
    flag-free — Parallel Track (the only flag producer) feeds the
    element path, so columnar callers bail out on flagged input.
    """
    key = ("hash-probe", port, key_index)

    def build() -> StatefulKernel:
        pair = "row + p_rows[j]" if port == 0 else "p_rows[j] + row"
        source = (
            "def _kernel(lo, hi, starts, ends, rows, buckets,"
            " p_starts, p_ends, p_rows, out_s, out_e, out_r):\n"
            "    get = buckets.get\n"
            "    app_s = out_s.append\n"
            "    app_e = out_e.append\n"
            "    app_r = out_r.append\n"
            "    matches = 0\n"
            "    ahead = False\n"
            "    for i in range(lo, hi):\n"
            "        row = rows[i]\n"
            f"        bucket = get(row[{key_index}])\n"
            "        if bucket:\n"
            "            s = starts[i]\n"
            "            e = ends[i]\n"
            "            for j in bucket:\n"
            "                matches += 1\n"
            "                ps = p_starts[j]\n"
            "                pe = p_ends[j]\n"
            "                s2 = ps if ps > s else s\n"
            "                e2 = pe if pe < e else e\n"
            "                if s2 < e2:\n"
            "                    if s2 > s:\n"
            "                        ahead = True\n"
            "                    app_s(s2)\n"
            "                    app_e(e2)\n"
            f"                    app_r({pair})\n"
            "    return matches, ahead\n"
        )
        namespace: Dict[str, Any] = {"__builtins__": {"range": range}}
        return StatefulKernel(fn=_exec_kernel(source, namespace), source=source, key=key)

    return _compile_cached(key, build)


#: Aggregate functions the fold kernel can inline, by name.
_FOLDABLE = ("count", "sum", "avg", "min", "max")


def compile_fold_kernel(spec: Tuple[Tuple[str, Any], ...]) -> StatefulKernel:
    """The ungrouped-aggregate segment fold, as generated code.

    ``spec`` is a tuple of ``(function_name, payload_index)`` pairs
    (``index`` is ``None`` for ``count``).  ``fn(a, starts, ends, rows,
    flags)`` folds, in one pass over the open state's insertion order,
    every element whose validity contains the segment start ``a`` —
    ``starts[i] <= a < ends[i]`` — and returns ``(n, values, flag)``:
    the live count (the element path's per-segment meter charge), the
    aggregate payload tuple, and the merged PT flag (``None`` for an
    all-unflagged segment, ``NEW`` only when *all* live elements are
    new, else ``OLD`` — :func:`repro.operators.aggregate.merge_flags`).
    ``n == 0`` yields ``(0, None, None)``: the segment is skipped.
    """
    key = ("agg-fold", tuple(spec))

    def build() -> StatefulKernel:
        inits: List[str] = []
        folds: List[str] = []
        values: List[str] = []
        needs_row = False
        for k, (fname, index) in enumerate(spec):
            if fname not in _FOLDABLE:
                raise ValueError(f"cannot fold aggregate function {fname!r}")
            if fname == "count":
                values.append("n")
                continue
            needs_row = True
            acc = f"a{k}"
            if fname in ("sum", "avg"):
                inits.append(f"    {acc} = 0")
                folds.append(f"            {acc} += row[{index}]")
                values.append(acc if fname == "sum" else f"{acc} / n")
            else:
                op = "<" if fname == "min" else ">"
                inits.append(f"    {acc} = None")
                folds.append(f"            v = row[{index}]")
                folds.append(
                    f"            if {acc} is None or v {op} {acc}:"
                )
                folds.append(f"                {acc} = v")
                values.append(acc)
        if needs_row:
            folds.insert(0, "            row = rows[i]")
        tuple_src = "(" + ", ".join(values) + ("," if len(values) == 1 else "") + ")"
        lines = [
            "def _kernel(a, starts, ends, rows, flags):",
            "    n = 0",
            "    nones = 0",
            "    news = 0",
            *inits,
            "    for i in range(len(starts)):",
            "        if starts[i] <= a < ends[i]:",
            "            n += 1",
            "            f = flags[i]",
            "            if f is None:",
            "                nones += 1",
            "            elif f == NEW:",
            "                news += 1",
            *folds,
            "    if n == 0:",
            "        return 0, None, None",
            "    if nones == n:",
            "        flag = None",
            "    elif news == n:",
            "        flag = NEW",
            "    else:",
            "        flag = OLD",
            f"    return n, {tuple_src}, flag",
        ]
        source = "\n".join(lines) + "\n"
        from ..temporal.element import NEW, OLD

        namespace: Dict[str, Any] = {
            "__builtins__": {"range": range, "len": len},
            "NEW": NEW,
            "OLD": OLD,
        }
        return StatefulKernel(fn=_exec_kernel(source, namespace), source=source, key=key)

    return _compile_cached(key, build)


def compile_extend_kernel() -> StatefulKernel:
    """The time-window end-extension map over a ``t_E`` column.

    ``fn(ends, window)`` returns the new end column — each entry
    extended by the window size, the columnar twin of
    :meth:`TimeInterval.extend` applied element-wise.
    """
    key = ("window-extend",)

    def build() -> StatefulKernel:
        source = (
            "def _kernel(ends, window):\n"
            "    return [e + window for e in ends]\n"
        )
        namespace: Dict[str, Any] = {"__builtins__": {}}
        return StatefulKernel(fn=_exec_kernel(source, namespace), source=source, key=key)

    return _compile_cached(key, build)
