"""Logical plans, expressions, and the logical-to-physical compiler."""

from .expressions import (
    And,
    Arithmetic,
    Comparison,
    Expression,
    Field,
    Literal,
    Not,
    Or,
    Schema,
    conjunction,
    conjuncts,
)
from .logical import (
    AggregateNode,
    AggregateSpec,
    DifferenceNode,
    DistinctNode,
    JoinNode,
    LogicalPlan,
    ProjectNode,
    Query,
    SelectNode,
    Source,
    UnionNode,
)
from .dot import box_to_dot, plan_to_dot
from .physical import PhysicalBuilder

__all__ = [
    "AggregateNode",
    "AggregateSpec",
    "And",
    "Arithmetic",
    "Comparison",
    "DifferenceNode",
    "DistinctNode",
    "Expression",
    "Field",
    "JoinNode",
    "Literal",
    "LogicalPlan",
    "Not",
    "Or",
    "PhysicalBuilder",
    "box_to_dot",
    "plan_to_dot",
    "ProjectNode",
    "Query",
    "Schema",
    "SelectNode",
    "Source",
    "UnionNode",
    "conjunction",
    "conjuncts",
]
