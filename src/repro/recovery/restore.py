"""Restore a checkpointed service and replay the tail of its feed.

Restore is a *rebuild*, not a resurrection: a fresh
:class:`~repro.service.ContinuousQueryService` is constructed with the
captured catalog/builder/registry configuration, each query is
re-registered from its recorded CQL text (so the physical plan comes out
of ``PhysicalBuilder`` exactly as it originally did — recovery never
constructs operators directly, lint rule RLB006), operator state is
seeded back through the GenMig ``seed_state`` hooks, and the hub is
rewound to the captured per-source offsets.  Feeding the original input
from those offsets onward then yields output byte-identical to the
uninterrupted run.

Known limitations, by design: the statistics catalog and the autonomic
controller's observation history restart empty (the controller re-enters
its warm-up phase), and a checkpoint taken *after* an autonomic migration
cannot be restored from CQL text alone — the installed plan no longer
matches the registered query, which restore detects via the recorded
plan signature and reports loudly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..cql.translate import Catalog
from ..plans.logical import Query
from ..plans.physical import PhysicalBuilder
from ..service import ContinuousQueryService
from ..service.controller import ControllerPolicy
from ..service.registry import PAUSED
from ..engine.metrics import MetricsRecorder
from ..temporal.element import StreamElement
from .checkpoint import validate_snapshot
from .errors import RecoveryError
from .snapshot import read_snapshot, unpack_elements


def restore_service(
    snapshot: Union[str, dict],
    *,
    queries: Optional[Dict[str, Query]] = None,
    policy: Optional[ControllerPolicy] = None,
    shards: Optional[Dict[str, int]] = None,
) -> ContinuousQueryService:
    """Rebuild a service from a snapshot file path or decoded payload.

    Args:
        snapshot: path of a file written by
            :meth:`~repro.recovery.checkpoint.CheckpointManager.checkpoint`,
            or an already decoded payload dict.
        queries: replacement :class:`Query` objects for queries that were
            registered as objects rather than CQL text (their plans cannot
            be recompiled from the snapshot alone).
        policy: controller policy for the rebuilt service; the controller
            restarts its warm-up either way.
        shards: per-query shard-count overrides.  A query checkpointed
            under ``N`` shards restores under any ``M >= 1`` — keyed
            operator state is re-partitioned through the sharding
            analysis — including ``N > 1 -> M = 1`` (scale back to a
            plain executor) and ``N = 1 -> M > 1`` (scale out a
            single-process checkpoint).
    """
    payload = validate_snapshot(
        read_snapshot(snapshot) if isinstance(snapshot, str) else snapshot
    )
    catalog = (
        Catalog(payload["catalog"]) if payload["catalog"] is not None else None
    )
    builder = PhysicalBuilder(
        join_cost=payload["builder"]["join_cost"],
        select_cost=payload["builder"]["select_cost"],
        force_nested_loops=payload["builder"]["force_nested_loops"],
        fuse=payload["builder"]["fuse"],
        columnar=payload["builder"]["columnar"],
    )
    registry_config = payload["registry"]
    service = ContinuousQueryService(
        catalog=catalog,
        policy=policy,
        builder=builder,
        default_window=registry_config["default_window"],
        time_scale=registry_config["time_scale"],
    )
    service.registry.bucket_size = registry_config["bucket_size"]
    hub_state = payload["hub"]
    service.hub.rewind(
        hub_state["clock"], hub_state["published"], hub_state["offsets"]
    )
    for record in payload["queries"]:
        name = record["name"]
        source: Union[str, Query, None] = (queries or {}).get(name) or record["cql"]
        if source is None:
            raise RecoveryError(
                f"query {name!r} was registered as a Query object, not CQL "
                "text: pass a replacement via restore_service(queries={...})"
            )
        recorder = MetricsRecorder(registry_config["bucket_size"])
        target_shards = (shards or {}).get(name, record.get("shards", 1))
        handle = service.register(
            name, source, metrics=recorder, shards=target_shards
        )
        signature = handle.plan.signature()
        if signature != record["plan_signature"]:
            raise RecoveryError(
                f"query {name!r} rebuilt to plan {signature!r} but the "
                f"snapshot holds state for {record['plan_signature']!r} — "
                "it was checkpointed after a migration and cannot be "
                "restored from its registered query alone"
            )
        state = _unpack_executor_state(record["executor"])
        if target_shards == 1 and state.get("sharded"):
            state = _collapse_sharded_state(handle.query, state)
        handle.executor.restore_checkpoint(state)
        recorder.restore_epoch(record["metrics"])
        handle.sink.elements.extend(unpack_elements(record["sink"]))
        handle.last_migration_completed = record["last_migration_completed"]
        if record["state"] == PAUSED:
            service.pause(name)
    return service


def replay_tail(
    service: ContinuousQueryService,
    feed: Iterable[Tuple[str, StreamElement]],
    offsets: Optional[Dict[str, int]] = None,
) -> int:
    """Replay the original feed into a restored service, skipping the
    prefix the checkpoint already covers.

    Args:
        service: a service produced by :func:`restore_service`.
        feed: the original ``(source, element)`` sequence in its original
            global order — the durable input log of a real deployment.
        offsets: per-source element counts to skip; defaults to the hub's
            restored offsets.

    Returns the number of elements actually replayed.  Inconsistencies
    between the feed and the recorded offsets — a skipped element the
    checkpoint could not have seen, or a replayed element behind the
    restored clock — surface as :class:`RecoveryError`.
    """
    hub = service.hub
    skip = dict(hub.offsets if offsets is None else offsets)
    replayed = 0
    for source, item in feed:
        pending = skip.get(source, 0)
        if pending > 0:
            skip[source] = pending - 1
            if item.start > hub.clock:
                raise RecoveryError(
                    f"inconsistent offsets: the checkpoint claims to have "
                    f"consumed {source!r} element at {item.start}, beyond "
                    f"its own clock {hub.clock} — the feed does not match "
                    "the checkpointed run"
                )
            continue
        try:
            hub.push(source, item)
        except ValueError as exc:
            raise RecoveryError(
                f"inconsistent offsets: replayed {source!r} element at "
                f"{item.start} is behind the restored hub clock "
                f"{hub.clock}"
            ) from exc
        replayed += 1
    return replayed


def _collapse_sharded_state(query: Query, state: dict) -> dict:
    """Fold an ``N``-shard checkpoint into one plain executor state.

    The inverse of scaling out: keyed state concatenates through the same
    re-partitioning helper the sharded executor uses (with one target
    shard everything lands on it, in merged canonical order), and the
    router-level clock and gate — the merged view a single process would
    have had — replace the per-shard template's.
    """
    from ..analysis.sharding import classify_sharding
    from ..engine.sharded import _repartition

    plan = classify_sharding(query)
    if not plan.shardable:
        raise RecoveryError(
            f"checkpoint holds sharded state but the plan is not "
            f"key-shardable: {plan.explain()}"
        )
    flat = _repartition(state["shards"], 1, plan.state_keys, plan.root_key)[0]
    flat["clock"] = state["clock"]
    flat["gate"] = dict(state["gate"])
    return flat


def _unpack_executor_state(packed: dict) -> dict:
    if packed.get("sharded"):
        state = dict(packed)
        state["shards"] = [
            _unpack_executor_state(shard_state) for shard_state in packed["shards"]
        ]
        return state
    state = dict(packed)
    operators: List[dict] = []
    for record in packed["operators"]:
        unpacked = dict(record)
        unpacked["progress"] = dict(record["progress"])
        unpacked["progress"]["staged"] = unpack_elements(
            record["progress"]["staged"]
        )
        unpacked["ports"] = (
            None
            if record["ports"] is None
            else [unpack_elements(columns) for columns in record["ports"]]
        )
        operators.append(unpacked)
    state["operators"] = operators
    return state
