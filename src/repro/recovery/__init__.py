"""Crash recovery: snapshot-consistent checkpoints, restore/replay, and
bounded-disorder admission.

The subsystem leans on the serialization boundary GenMig already forces
on every stateful operator — the ``state_of_port``/``seed_state`` drain
hooks — so a checkpoint is "drain every box at a consistent cut, pack
the elements into columns, write one checksummed file", and a restore
is "rebuild the plan from the registered CQL, seed the state back,
rewind the hub, replay the tail".  See ``docs/recovery.md``.

Only :mod:`repro.recovery.errors` is imported eagerly: the engine,
service and pn layers raise ``RecoveryError`` at module level, and the
heavier checkpoint/restore modules import those layers in turn.  The
remaining names resolve lazily (:pep:`562`) to keep the import graph
acyclic.
"""

from __future__ import annotations

from .errors import DisorderError, RecoveryError, SnapshotFormatError

__all__ = [
    "CheckpointManager",
    "DisorderBuffer",
    "DisorderError",
    "RecoveryError",
    "SnapshotFormatError",
    "decode_snapshot",
    "encode_snapshot",
    "pack_elements",
    "read_snapshot",
    "replay_tail",
    "restore_service",
    "unpack_elements",
    "write_snapshot",
]

_LAZY = {
    "CheckpointManager": ("repro.recovery.checkpoint", "CheckpointManager"),
    "DisorderBuffer": ("repro.recovery.disorder", "DisorderBuffer"),
    "decode_snapshot": ("repro.recovery.snapshot", "decode_snapshot"),
    "encode_snapshot": ("repro.recovery.snapshot", "encode_snapshot"),
    "pack_elements": ("repro.recovery.snapshot", "pack_elements"),
    "read_snapshot": ("repro.recovery.snapshot", "read_snapshot"),
    "replay_tail": ("repro.recovery.restore", "replay_tail"),
    "restore_service": ("repro.recovery.restore", "restore_service"),
    "unpack_elements": ("repro.recovery.snapshot", "unpack_elements"),
    "write_snapshot": ("repro.recovery.snapshot", "write_snapshot"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
