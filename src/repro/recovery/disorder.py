"""Slack-bounded reordering at the ingestion edge.

The hub demands globally start-ordered input; real feeds interleave
sources with bounded skew.  :class:`DisorderBuffer` sits in front of an
:class:`~repro.service.ingest.IngestHub` and admits *bounded-disorder*
input: an element may arrive up to ``slack`` chronons after a later-
timestamped element.  Buffered elements are held in a heap and released
in global ``(start, arrival)`` order once the *reorder frontier* —
``max_seen_start - slack``, raised further by explicit transport
promises — guarantees nothing earlier can still arrive; each drain also
forwards the frontier to the hub as punctuation, so downstream windows
expire and migrations progress even while elements sit buffered.

An arrival below the frontier violates the slack contract and raises
:class:`~repro.recovery.errors.DisorderError` — the typed, loud
alternative to the silent corruption an unordered push would cause
downstream (this is the punctuation-feedback discipline of
Fernández-Moctezuma et al., applied at the edge).
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Tuple

from ..service.ingest import IngestHub
from ..temporal.element import StreamElement, element
from ..temporal.time import MIN_TIME, Time
from .errors import DisorderError


class DisorderBuffer:
    """Admission buffer turning slack-bounded disorder into hub order.

    Args:
        hub: the ingestion hub to feed.
        slack: maximum admissible disorder, in chronons: an arrival's
            start may trail the maximum start seen so far by at most
            this much.  ``0`` accepts only ordered input (ties included).
    """

    def __init__(self, hub: IngestHub, slack: Time) -> None:
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        self.hub = hub
        self.slack = slack
        self._heap: List[Tuple[Time, int, str, StreamElement]] = []
        self._seq = itertools.count()
        self._max_seen: Time = MIN_TIME
        self._promise: Time = MIN_TIME
        #: Elements released to the hub so far.
        self.admitted = 0
        #: Admitted elements that arrived behind a later-timestamped one.
        self.reordered = 0

    @property
    def frontier(self) -> Time:
        """No future arrival may start below this bound."""
        bound = self._max_seen - self.slack
        if self._promise > bound:
            bound = self._promise
        return bound if bound > MIN_TIME else MIN_TIME

    @property
    def pending(self) -> int:
        """Elements currently buffered, awaiting the frontier."""
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def publish(self, source: str, payload: object, at: Time) -> None:
        """Buffer one timestamped tuple (the hub's ``publish`` analogue)."""
        self.push(source, element(payload, at, at + 1))

    def push(self, source: str, item: StreamElement) -> None:
        """Buffer one element, releasing everything the frontier allows."""
        start = item.start
        frontier = self.frontier
        if start < frontier:
            raise DisorderError(
                f"{source!r} element at {start} exceeds the disorder slack "
                f"{self.slack}: the reorder frontier has reached {frontier} "
                f"(max start seen {self._max_seen})"
            )
        heapq.heappush(self._heap, (start, next(self._seq), source, item))
        if start > self._max_seen:
            self._max_seen = start
        elif start < self._max_seen:
            self.reordered += 1
        self._drain()

    def advance(self, t: Time) -> None:
        """Accept a transport promise: no future arrival starts before ``t``."""
        if t > self._promise:
            self._promise = t
            self._drain()

    def flush(self) -> None:
        """Release everything buffered, in order (end-of-feed drain)."""
        heap = self._heap
        while heap:
            _, _, source, item = heapq.heappop(heap)
            self.hub.push(source, item)
            self.admitted += 1

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _drain(self) -> None:
        frontier = self.frontier
        heap = self._heap
        while heap and heap[0][0] <= frontier:
            _, _, source, item = heapq.heappop(heap)
            self.hub.push(source, item)
            self.admitted += 1
        # Punctuate: the hub may promise the frontier to every query even
        # though the elements bearing it are still buffered.
        if frontier > self.hub.clock:
            self.hub.advance(frontier)
