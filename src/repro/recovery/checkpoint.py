"""Snapshot-consistent checkpoints of a running continuous-query service.

A checkpoint is taken at a *consistent cut*: between hub ingestion turns,
with every executor quiescent — no migration in flight, no scheduled
actions pending.  At such a cut, per-query operator state (drained through
the GenMig ``state_of_port`` hooks), the output gate and metrics epochs,
and the hub's per-source offsets together determine the service's entire
observable future: restoring them and replaying each source's feed from
its recorded offset reproduces the uninterrupted run byte for byte (the
snapshot-equivalence guarantee the integration suite asserts through
``RelationalReference``).

The captured payload is a pure tree of builtins, written through the
pickle-free codec in :mod:`repro.recovery.snapshot`; stream elements pack
into ``array('q')``-backed time columns.
"""

from __future__ import annotations

from typing import List

from ..service import ContinuousQueryService
from ..service.registry import PAUSED
from .errors import RecoveryError
from .snapshot import pack_elements, write_snapshot

#: Identifies the payload inside the generic codec container.
FORMAT = "repro-checkpoint"
FORMAT_VERSION = 1


class CheckpointManager:
    """Captures consistent snapshots of one :class:`ContinuousQueryService`.

    Usage::

        manager = CheckpointManager(service)
        size = manager.checkpoint("service.ckpt")   # between publishes
        ...
        restored = restore_service("service.ckpt")  # in a new process
    """

    def __init__(self, service: ContinuousQueryService) -> None:
        self.service = service

    # ------------------------------------------------------------------ #
    # Capture
    # ------------------------------------------------------------------ #

    def capture(self) -> dict:
        """Assemble the snapshot payload at the current cut.

        Raises :class:`RecoveryError` when any query cannot be quiesced
        (migration in flight, actions pending, executor finished) or when
        a query was registered from a :class:`~repro.plans.logical.Query`
        object *and* holds state — such plans cannot be rebuilt from CQL
        text, so restore needs the caller to re-supply the object; the
        snapshot records ``cql: None`` to signal it.
        """
        registry = self.service.registry
        hub = self.service.hub
        builder = registry.builder
        catalog = registry.catalog
        queries: List[dict] = []
        for handle in registry.handles():
            executor_state = handle.executor.checkpoint_state()
            queries.append(
                {
                    "name": handle.name,
                    "cql": handle.cql,
                    "state": handle.state,
                    "shards": getattr(handle, "shards", 1),
                    "plan_signature": handle.plan.signature(),
                    "last_migration_completed": handle.last_migration_completed,
                    "executor": _pack_executor_state(executor_state),
                    "metrics": handle.metrics.epoch_state(),
                    "sink": pack_elements(handle.sink.elements),
                }
            )
        return {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "hub": {
                "clock": hub.clock,
                "published": hub.published,
                "offsets": dict(hub.offsets),
            },
            "catalog": (
                {name: list(columns) for name, columns in catalog.schemas().items()}
                if catalog is not None
                else None
            ),
            "builder": {
                "join_cost": builder.join_cost,
                "select_cost": builder.select_cost,
                "force_nested_loops": builder.force_nested_loops,
                "fuse": builder.fuse,
                "columnar": builder.columnar,
            },
            "registry": {
                "default_window": registry.default_window,
                "time_scale": registry.time_scale,
                "bucket_size": registry.bucket_size,
            },
            "queries": queries,
        }

    def checkpoint(self, path: str) -> int:
        """Capture and write a snapshot file; returns its size in bytes."""
        return write_snapshot(path, self.capture())


# --------------------------------------------------------------------- #
# Executor-state packing (element objects <-> codec columns)
# --------------------------------------------------------------------- #


def _pack_executor_state(state: dict) -> dict:
    if state.get("sharded"):
        # A sharded checkpoint wraps one per-shard executor state each;
        # the router-level fields are already plain builtins.
        packed = dict(state)
        packed["shards"] = [
            _pack_executor_state(shard_state) for shard_state in state["shards"]
        ]
        return packed
    packed = dict(state)
    packed["operators"] = [
        {
            **record,
            "progress": {
                **record["progress"],
                "staged": pack_elements(record["progress"]["staged"]),
            },
            "ports": (
                None
                if record["ports"] is None
                else [pack_elements(elements) for elements in record["ports"]]
            ),
        }
        for record in state["operators"]
    ]
    return packed


def validate_snapshot(payload: object) -> dict:
    """Check the decoded payload is a checkpoint this build understands."""
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise RecoveryError("the snapshot is not a service checkpoint")
    if payload.get("version") != FORMAT_VERSION:
        raise RecoveryError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    return payload


def paused_names(payload: dict) -> List[str]:
    """The queries that were paused at capture time."""
    return [query["name"] for query in payload["queries"] if query["state"] == PAUSED]
