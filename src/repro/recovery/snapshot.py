"""The versioned, checksummed, pickle-free snapshot codec.

A snapshot is a plain tree of Python builtins (``None``, ``bool``,
``int``, ``float``, ``str``, ``bytes``, ``Fraction``, ``tuple``,
``list``, ``dict``) encoded in a tagged binary format:

* header — magic ``RPCK``, a big-endian ``uint16`` format version, the
  CRC-32 of the body and the body length; any mismatch raises
  :class:`~repro.recovery.errors.SnapshotFormatError` before a single
  value is decoded;
* body — one tag byte per value followed by its payload.  Homogeneous
  ``int`` lists (the dominant content: start/end time columns of
  drained operator state) pack as a single ``array('q')`` blob, the
  same struct-of-arrays trick ``temporal/columnar.py`` uses, instead of
  one tag per entry.

``pickle`` is deliberately not used: a snapshot may be read by a
different process (or reviewed by a human with ``xxd``), and unpickling
untrusted files executes arbitrary code.  Unsupported value types fail
encoding with a typed error — a checkpoint either round-trips exactly
or is refused up front.

Stream elements cross the codec as column dictionaries via
:func:`pack_elements` / :func:`unpack_elements`.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from ..temporal.element import StreamElement
from ..temporal.interval import TimeInterval
from .errors import SnapshotFormatError

MAGIC = b"RPCK"
VERSION = 1

#: Header layout: magic, version, CRC-32 of the body, body length.
_HEADER = struct.Struct(">4sHIQ")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

_TAG_NONE = b"N"
_TAG_FALSE = b"F"
_TAG_TRUE = b"T"
_TAG_INT = b"i"       # 8-byte big-endian signed
_TAG_BIGINT = b"I"    # length-prefixed two's-complement bytes
_TAG_FLOAT = b"f"     # 8-byte IEEE double
_TAG_STR = b"s"       # length-prefixed UTF-8
_TAG_BYTES = b"b"     # length-prefixed raw bytes
_TAG_FRACTION = b"q"  # numerator, denominator (nested ints)
_TAG_TUPLE = b"t"     # count-prefixed items
_TAG_LIST = b"l"      # count-prefixed items
_TAG_INT_COLUMN = b"A"  # count-prefixed array('q') blob (int64 list)
_TAG_DICT = b"d"      # count-prefixed key/value pairs

_LEN = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


def _encode(value: object, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out += _TAG_INT
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out += _TAG_BIGINT
            out += _LEN.pack(len(raw))
            out += raw
        return
    elif type(value) is float:
        out += _TAG_FLOAT
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += _LEN.pack(len(raw))
        out += raw
    elif type(value) is bytes:
        out += _TAG_BYTES
        out += _LEN.pack(len(value))
        out += value
    elif type(value) is Fraction:
        out += _TAG_FRACTION
        _encode(value.numerator, out)
        _encode(value.denominator, out)
    elif type(value) is tuple:
        out += _TAG_TUPLE
        out += _LEN.pack(len(value))
        for item in value:
            _encode(item, out)
    elif type(value) is list:
        if value and all(
            type(item) is int and _INT64_MIN <= item <= _INT64_MAX for item in value
        ):
            column = array("q", value)
            if sys.byteorder != "big":
                column.byteswap()
            out += _TAG_INT_COLUMN
            out += _LEN.pack(len(value))
            out += column.tobytes()
        else:
            out += _TAG_LIST
            out += _LEN.pack(len(value))
            for item in value:
                _encode(item, out)
    elif type(value) is dict:
        out += _TAG_DICT
        out += _LEN.pack(len(value))
        for key, item in value.items():
            _encode(key, out)
            _encode(item, out)
    else:
        raise SnapshotFormatError(
            f"cannot encode a {type(value).__name__} into a snapshot: supported "
            "types are None/bool/int/float/str/bytes/Fraction/tuple/list/dict"
        )


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise SnapshotFormatError(
                f"truncated snapshot body: needed {count} bytes at offset "
                f"{self.pos}, only {len(self.data) - self.pos} remain"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def length(self) -> int:
        return _LEN.unpack(self.take(8))[0]


def _decode(reader: _Reader) -> object:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return _I64.unpack(reader.take(8))[0]
    if tag == _TAG_BIGINT:
        return int.from_bytes(reader.take(reader.length()), "big", signed=True)
    if tag == _TAG_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take(reader.length()).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take(reader.length())
    if tag == _TAG_FRACTION:
        numerator = _decode(reader)
        denominator = _decode(reader)
        if not isinstance(numerator, int) or not isinstance(denominator, int):
            raise SnapshotFormatError("malformed Fraction in snapshot body")
        return Fraction(numerator, denominator)
    if tag == _TAG_TUPLE:
        return tuple(_decode(reader) for _ in range(reader.length()))
    if tag == _TAG_LIST:
        return [_decode(reader) for _ in range(reader.length())]
    if tag == _TAG_INT_COLUMN:
        count = reader.length()
        column = array("q")
        column.frombytes(reader.take(count * column.itemsize))
        if sys.byteorder != "big":
            column.byteswap()
        return list(column)
    if tag == _TAG_DICT:
        return {_decode(reader): _decode(reader) for _ in range(reader.length())}
    raise SnapshotFormatError(f"unknown snapshot tag {tag!r} at offset {reader.pos - 1}")


# --------------------------------------------------------------------- #
# Public codec API
# --------------------------------------------------------------------- #


def encode_snapshot(payload: object) -> bytes:
    """Serialize ``payload`` into a self-verifying snapshot blob."""
    body = bytearray()
    _encode(payload, body)
    checksum = zlib.crc32(body) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, VERSION, checksum, len(body)) + bytes(body)


def decode_snapshot(data: bytes) -> object:
    """Verify and decode a snapshot blob produced by :func:`encode_snapshot`."""
    if len(data) < _HEADER.size:
        raise SnapshotFormatError(
            f"snapshot too short: {len(data)} bytes, header needs {_HEADER.size}"
        )
    magic, version, checksum, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise SnapshotFormatError(f"bad snapshot magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot version {version} (this build reads {VERSION})"
        )
    body = data[_HEADER.size :]
    if len(body) != length:
        raise SnapshotFormatError(
            f"snapshot body is {len(body)} bytes but the header promises {length}"
        )
    if (zlib.crc32(body) & 0xFFFFFFFF) != checksum:
        raise SnapshotFormatError(
            "snapshot checksum mismatch: the file is corrupted or was "
            "modified after capture"
        )
    reader = _Reader(body)
    payload = _decode(reader)
    if reader.pos != len(body):
        raise SnapshotFormatError(
            f"{len(body) - reader.pos} trailing bytes after the snapshot payload"
        )
    return payload


def write_snapshot(path: str, payload: object) -> int:
    """Encode ``payload`` and write it to ``path``; returns the byte size."""
    blob = encode_snapshot(payload)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def read_snapshot(path: str) -> object:
    """Read, verify and decode the snapshot file at ``path``."""
    with open(path, "rb") as handle:
        return decode_snapshot(handle.read())


# --------------------------------------------------------------------- #
# Stream-element columns
# --------------------------------------------------------------------- #


def pack_elements(elements: Sequence[StreamElement]) -> Dict[str, list]:
    """Decompose elements into parallel columns for compact encoding.

    The ``starts``/``ends`` columns are all-``int`` in the common case
    and hit the codec's ``array('q')`` fast path; ``rows`` and ``flags``
    stay per-element (payload tuples are heterogeneous by nature).
    """
    starts: List[object] = []
    ends: List[object] = []
    rows: List[tuple] = []
    flags: List[Optional[str]] = []
    for element in elements:
        starts.append(element.start)
        ends.append(element.end)
        rows.append(element.payload)
        flags.append(element.flag)
    return {"starts": starts, "ends": ends, "rows": rows, "flags": flags}


def unpack_elements(columns: Dict[str, list]) -> List[StreamElement]:
    """Rebuild stream elements from :func:`pack_elements` columns."""
    return [
        StreamElement(tuple(row), TimeInterval(start, end), flag)
        for start, end, row, flag in zip(
            columns["starts"], columns["ends"], columns["rows"], columns["flags"]
        )
    ]
