"""Typed failures of the crash-recovery subsystem.

Recovery errors follow the loud-failure convention the benchmark harness
established: a checkpoint that cannot be taken, a snapshot that cannot be
trusted or a disordered arrival that exceeds its slack must surface as a
*typed* exception the caller can catch deliberately — never as silent
corruption, a bare ``assert`` (stripped under ``python -O``) or an
anonymous ``RuntimeError``.

This module imports nothing from the rest of the package so the engine
and service layers can raise these types without import cycles.
"""

from __future__ import annotations


class RecoveryError(RuntimeError):
    """A checkpoint, restore or replay operation cannot proceed safely.

    Subclasses ``RuntimeError`` so legacy callers that guarded the
    executor's replay paths with ``except RuntimeError`` keep working.
    """


class SnapshotFormatError(RecoveryError):
    """A snapshot file is malformed, corrupted or of an unknown version."""


class DisorderError(RecoveryError):
    """An arrival's disorder exceeds the admission buffer's slack bound.

    Raised by :class:`repro.recovery.disorder.DisorderBuffer` when an
    element starts below the reorder frontier: admitting it would force
    the hub to violate global start order, so the element is rejected
    loudly instead of corrupting downstream snapshots silently.
    """
