"""Legacy shim so ``pip install -e .`` works without the wheel package.

All real project metadata lives in pyproject.toml; this file only enables
the fallback editable-install path on environments lacking ``wheel``.
"""

from setuptools import setup

setup()
